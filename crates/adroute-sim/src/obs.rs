//! Structured observability: typed event records, metrics, histograms.
//!
//! This module replaces free-form string tracing as the *source of truth*
//! for what happened during a run. The engine (and the ORWG data plane
//! above it) emits typed [`EventRecord`]s into a bounded [`EventLog`];
//! the legacy [`Trace`](crate::Trace) is now a rendered view over the
//! same stream — every trace line is `EventRecord`'s `Display` form — so
//! `first_divergence` keeps working as the regression primitive while
//! machine consumers get a stable JSONL export instead of parsing text.
//!
//! Alongside the log, a [`MetricsRegistry`] holds named counters and
//! fixed-bucket [`Histogram`]s (route-setup latency, per-AD message load,
//! invalidation fan-out), which is how the E-series experiments report
//! *distributions* instead of single totals. Everything here is
//! deterministic: same configuration, byte-identical export.
//!
//! Every logged record additionally carries a stable [`EventId`] and an
//! optional `cause` — the id of the event that provoked it — so the log
//! is a causality DAG, not just a sequence. The [`causal`] module builds
//! span trees over that DAG (convergence critical path, per-root storm
//! reports, per-AD timelines), which is what turns the flight recorder
//! into a debugger.

pub mod causal;
pub mod prof;

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::fmt::Write as _;

use adroute_topology::{AdId, LinkId};

use crate::event::SimTime;

/// The id base of the ORWG data-plane event stream. The engine's
/// control-plane log assigns ids from 0; the data plane starts here so a
/// merged export (e.g. `chaos --trace`) has globally unique ids and the
/// two streams can be joined into one causality graph.
pub const DATA_STREAM_ID_BASE: u64 = 1 << 32;

/// A stable identifier of one logged event within a run. Ids are assigned
/// monotonically per [`EventLog`] (numbering the full stream, including
/// evicted records) and never reused, so `cause < id` always holds and
/// the causality graph is acyclic by construction.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId(pub u64);

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Number of power-of-two histogram buckets: bucket 0 holds exact zeros,
/// bucket `k` (1 ≤ k < 40) holds `2^(k-1) ..= 2^k - 1`, bucket 40 holds
/// everything `≥ 2^39`.
const HIST_BUCKETS: usize = 41;

/// One typed simulation event. `Display` renders the exact line the
/// legacy string [`Trace`](crate::Trace) records, so a trace is a pure
/// view over the typed stream; [`EventRecord::to_json`] renders the
/// machine-readable JSONL form with a fixed field order.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EventRecord {
    /// Router start-up at time zero (or a scheduled cold start).
    Start {
        /// The booting AD.
        ad: AdId,
    },
    /// A message handed to the channel (per-hop transmission).
    MsgSend {
        /// Sending AD.
        from: AdId,
        /// Receiving neighbor.
        to: AdId,
        /// Carrying link.
        link: LinkId,
        /// Encoded size in bytes.
        bytes: u64,
    },
    /// A message delivered to its destination's handler.
    MsgDeliver {
        /// Sending AD.
        from: AdId,
        /// Receiving neighbor.
        to: AdId,
        /// Carrying link.
        link: LinkId,
    },
    /// A message lost in flight (link died or destination crashed).
    MsgLost {
        /// Sending AD.
        from: AdId,
        /// Intended receiver.
        to: AdId,
        /// Carrying link.
        link: LinkId,
    },
    /// A send dropped at the source: no operational link to `to`.
    MsgDrop {
        /// Sending AD.
        from: AdId,
        /// Intended receiver (non-neighbor or across a failed link).
        to: AdId,
    },
    /// A live one-shot timer firing.
    TimerFire {
        /// Owning AD.
        ad: AdId,
        /// Opaque protocol token.
        token: u64,
    },
    /// A timer from a dead incarnation, discarded unfired.
    StaleTimer {
        /// Owning AD.
        ad: AdId,
        /// Opaque protocol token.
        token: u64,
    },
    /// A link becoming operational.
    LinkUp {
        /// The link.
        link: LinkId,
    },
    /// A link going out of operation.
    LinkDown {
        /// The link.
        link: LinkId,
    },
    /// A link scheduled up but held down by a crashed endpoint.
    LinkUpMasked {
        /// The link.
        link: LinkId,
    },
    /// A router crash (soft state lost, adjacent links fate-share).
    Crash {
        /// The crashing AD.
        ad: AdId,
    },
    /// A router restart (state rebuilt from scratch).
    Restart {
        /// The rebooting AD.
        ad: AdId,
    },
    /// Channel fault: message silently dropped in flight.
    ChanLoss {
        /// Sending AD.
        from: AdId,
        /// Intended receiver.
        to: AdId,
        /// Carrying link.
        link: LinkId,
    },
    /// Channel fault: payload corrupted, dropped by receiver checksum.
    ChanCorrupt {
        /// Sending AD.
        from: AdId,
        /// Intended receiver.
        to: AdId,
        /// Carrying link.
        link: LinkId,
    },
    /// Channel fault: message delayed out of order.
    ChanReorder {
        /// Sending AD.
        from: AdId,
        /// Receiver.
        to: AdId,
        /// Carrying link.
        link: LinkId,
    },
    /// Channel fault: an extra copy injected.
    ChanDup {
        /// Sending AD.
        from: AdId,
        /// Receiver.
        to: AdId,
        /// Carrying link.
        link: LinkId,
    },
    /// A [`FaultPlan`](crate::FaultPlan) installed on the engine.
    FaultPlanApplied {
        /// Scheduled link up/down events.
        link_events: u64,
        /// Scheduled router crash/restart pairs.
        outages: u64,
        /// Whether a lossy channel model was installed.
        lossy: bool,
    },
    /// A partition fault scheduled: a cut set of links goes down
    /// together, splitting the flooding domain into two islands.
    PartitionCut {
        /// Links in the cut set.
        links: u64,
        /// ADs on the low-index side of the split.
        left: u64,
        /// ADs on the high-index side of the split.
        right: u64,
    },
    /// The partition's heal scheduled: the cut set comes back up.
    PartitionHeal {
        /// Links restored.
        links: u64,
    },
    /// A measurement phase boundary (see [`Stats::begin_phase`](crate::Stats::begin_phase)).
    PhaseBegin {
        /// Phase name (`"converge"`, `"failure-response"`, `"churn"`, …).
        name: &'static str,
    },
    /// A link-state advertisement originated by its owner.
    LsaOriginate {
        /// Originating AD.
        origin: AdId,
        /// New sequence number.
        seq: u64,
        /// Links described by the LSA.
        links: u64,
    },
    /// A newer LSA accepted into a router's database.
    LsaAccept {
        /// Accepting AD.
        at: AdId,
        /// LSA originator.
        origin: AdId,
        /// Accepted sequence number.
        origin_seq: u64,
    },
    /// A duplicate (not-newer) LSA discarded without reflooding.
    LsaDuplicate {
        /// Discarding AD.
        at: AdId,
        /// LSA originator.
        origin: AdId,
        /// Stale sequence number seen.
        origin_seq: u64,
    },
    /// OSPF-style recovery: a router saw its own pre-crash LSA and jumped
    /// its sequence number past the ghost.
    LsaSeqJump {
        /// The recovering AD.
        at: AdId,
        /// The sequence number jumped to.
        seq: u64,
    },
    /// A full database resync pushed to a neighbor (link-up handshake).
    LsaResync {
        /// The sending AD.
        at: AdId,
        /// The neighbor receiving the database.
        neighbor: AdId,
        /// LSAs pushed.
        lsas: u64,
    },
    /// A distance/path-vector style route recomputation.
    RouteRecompute {
        /// Recomputing AD.
        ad: AdId,
        /// Protocol tag (`"ecma"`, `"dv"`, `"pv"`).
        proto: &'static str,
        /// Whether the routing table changed (triggering advertisement).
        changed: bool,
    },
    /// An ORWG route-setup attempt entering the network.
    RouteSetupOpen {
        /// Source AD.
        src: AdId,
        /// Destination AD.
        dst: AdId,
    },
    /// A route setup validated end-to-end (the "ack" path).
    RouteSetupAck {
        /// Source AD.
        src: AdId,
        /// Destination AD.
        dst: AdId,
        /// AD-level hop count of the installed route.
        hops: u64,
        /// End-to-end setup latency in microseconds.
        latency_us: u64,
    },
    /// A route setup rejected in-network (no route, policy denial, or a
    /// dead hop): the "nack" leg of the span tree.
    RouteSetupNack {
        /// Source AD.
        src: AdId,
        /// Destination AD.
        dst: AdId,
        /// Rejection reason: `"no-route"`, `"validate"`, or `"setup-loss"`.
        reason: &'static str,
    },
    /// A lost setup packet retried after backoff; attempt numbering
    /// starts at 1 for the first retransmission.
    RouteSetupRetransmit {
        /// Source AD.
        src: AdId,
        /// Destination AD.
        dst: AdId,
        /// Which retransmission this is (1-based).
        attempt: u64,
    },
    /// A broken open flow routed around (or given up on) by repair.
    RouteSetupRepair {
        /// Source AD.
        src: AdId,
        /// Destination AD.
        dst: AdId,
        /// Repair outcome: `"alternate"`, `"synthesis"`, or `"failed"`.
        via: &'static str,
    },
    /// Route-server cache entries invalidated by a topology/policy delta.
    ViewInvalidate {
        /// One endpoint of the changed element (for a policy change, the
        /// changed AD twice).
        a: AdId,
        /// The other endpoint.
        b: AdId,
        /// Cache entries invalidated across all route servers (fan-out).
        entries: u64,
    },
    /// A view delta applied across the route-server population.
    ViewDeltaApply {
        /// Maintenance mode: `"incremental"` or `"flush"`.
        mode: &'static str,
        /// Servers that fell back to a full rebuild.
        fallbacks: u64,
    },
    /// A byzantine misbehavior model armed on an AD (the causal root of
    /// every alarm and quarantine the misbehavior later provokes).
    MisbehaviorInject {
        /// The misbehaving AD.
        ad: AdId,
        /// Model tag (see `MisbehaviorModel::tag`): `"route-leak"`,
        /// `"blackhole"`, `"forged-ack"`, ….
        model: &'static str,
    },
    /// A runtime safety monitor confirming a violation and naming a
    /// suspect.
    MonitorAlarm {
        /// Detector tag: `"policy-violation"`, `"persistent-loop"`,
        /// `"blackhole"`, or `"count-to-infinity"`.
        detector: &'static str,
        /// The AD the monitor holds responsible.
        suspect: AdId,
        /// Supporting observations accumulated before the alarm fired.
        evidence: u64,
    },
    /// The quarantine controller excising an AD from route synthesis.
    QuarantineEnter {
        /// The quarantined AD.
        ad: AdId,
    },
    /// A quarantine released (misbehavior ceased or was disproved).
    QuarantineLift {
        /// The released AD.
        ad: AdId,
    },
    /// An open deferred by the Route Server's admission controller:
    /// queued behind earlier work instead of being served immediately.
    SetupDefer {
        /// Source AD.
        src: AdId,
        /// Destination AD.
        dst: AdId,
        /// Open-queue depth after enqueue.
        depth: u64,
    },
    /// An open shed under overload: the client receives a NACK carrying
    /// a retry-after hint instead of being silently dropped.
    SetupShed {
        /// Source AD.
        src: AdId,
        /// Destination AD.
        dst: AdId,
        /// Server-suggested earliest retry delay, µs.
        retry_after_us: u64,
        /// Open-queue depth at the shed decision.
        depth: u64,
    },
    /// A shed or refused open retried by its client after backoff.
    SetupRetry {
        /// Source AD.
        src: AdId,
        /// Destination AD.
        dst: AdId,
        /// Which retry this is (1-based).
        attempt: u64,
        /// Backoff waited before this retry, µs.
        backoff_us: u64,
    },
    /// A queued open dequeued for service, with the brownout rung the
    /// admission watermarks selected.
    SetupAdmit {
        /// Source AD.
        src: AdId,
        /// Destination AD.
        dst: AdId,
        /// Brownout rung tag: `"full"`, `"cached"`, or `"stored"`.
        rung: &'static str,
        /// Time spent queued, µs.
        waited_us: u64,
    },
    /// A client giving up on an open: the setup deadline is exhausted
    /// (any queued or partially-installed work is cancelled).
    SetupAbandon {
        /// Source AD.
        src: AdId,
        /// Destination AD.
        dst: AdId,
        /// Attempts made before giving up.
        attempts: u64,
    },
    /// A Route Server crash: soft state (route cache, precomputed table,
    /// open queue) is lost and queued opens are cancelled.
    RsCrash {
        /// The AD whose Route Server crashed.
        ad: AdId,
    },
    /// A warm standby taking over a crashed Route Server: soft state is
    /// rebuilt from the flooded view, the cache preseeded from the last
    /// standby sync.
    RsFailover {
        /// The AD whose Route Server recovered.
        ad: AdId,
        /// Cached routes revalidated and preseeded by the standby.
        warmed: u64,
    },
    /// A batched synthesis sweep: one multi-destination search answered
    /// several co-routable queued opens at once (sharded service).
    SynthBatch {
        /// The AD whose Route Server ran the sweep.
        ad: AdId,
        /// Queued opens answered by this batch.
        flows: u64,
        /// Flows that needed a fresh search (the rest hit stored state).
        fresh: u64,
    },
    /// A background precompute pass refilling cache entries that a view
    /// change invalidated, ahead of the next open that wants them.
    PrecomputeRefill {
        /// The AD whose Route Server refilled.
        ad: AdId,
        /// Entries restored into the route cache.
        refilled: u64,
    },
}

impl fmt::Display for EventRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use EventRecord::*;
        match *self {
            Start { ad } => write!(f, "start {ad}"),
            MsgSend { from, to, link, .. } => write!(f, "send {from}->{to} via {link}"),
            MsgDeliver { from, to, link } => write!(f, "deliver {from}->{to} via {link}"),
            MsgLost { from, to, link } => write!(f, "lost {from}->{to} via {link}"),
            MsgDrop { from, to } => write!(f, "drop {from}->{to} at source"),
            TimerFire { ad, token } => write!(f, "timer {ad} token={token}"),
            StaleTimer { ad, token } => write!(f, "stale-timer {ad} token={token}"),
            LinkUp { link } => write!(f, "link {link} up"),
            LinkDown { link } => write!(f, "link {link} down"),
            LinkUpMasked { link } => write!(f, "link {link} up-masked"),
            Crash { ad } => write!(f, "crash {ad}"),
            Restart { ad } => write!(f, "restart {ad}"),
            ChanLoss { from, to, link } => write!(f, "chan-loss {from}->{to} via {link}"),
            ChanCorrupt { from, to, link } => write!(f, "chan-corrupt {from}->{to} via {link}"),
            ChanReorder { from, to, link } => write!(f, "chan-reorder {from}->{to} via {link}"),
            ChanDup { from, to, link } => write!(f, "chan-dup {from}->{to} via {link}"),
            FaultPlanApplied {
                link_events,
                outages,
                lossy,
            } => write!(
                f,
                "fault-plan links={link_events} outages={outages} lossy={lossy}"
            ),
            PartitionCut { links, left, right } => {
                write!(f, "partition-cut links={links} left={left} right={right}")
            }
            PartitionHeal { links } => write!(f, "partition-heal links={links}"),
            PhaseBegin { name } => write!(f, "phase {name}"),
            LsaOriginate { origin, seq, links } => {
                write!(f, "lsa-originate {origin} seq={seq} links={links}")
            }
            LsaAccept {
                at,
                origin,
                origin_seq,
            } => write!(f, "lsa-accept {at} origin={origin} seq={origin_seq}"),
            LsaDuplicate {
                at,
                origin,
                origin_seq,
            } => write!(f, "lsa-dup {at} origin={origin} seq={origin_seq}"),
            LsaSeqJump { at, seq } => write!(f, "lsa-seq-jump {at} seq={seq}"),
            LsaResync { at, neighbor, lsas } => {
                write!(f, "lsa-resync {at}->{neighbor} lsas={lsas}")
            }
            RouteRecompute { ad, proto, changed } => {
                write!(f, "recompute {ad} proto={proto} changed={changed}")
            }
            RouteSetupOpen { src, dst } => write!(f, "setup-open {src}->{dst}"),
            RouteSetupAck {
                src,
                dst,
                hops,
                latency_us,
            } => write!(
                f,
                "setup-ack {src}->{dst} hops={hops} latency={latency_us}us"
            ),
            RouteSetupNack { src, dst, reason } => {
                write!(f, "setup-nack {src}->{dst} reason={reason}")
            }
            RouteSetupRetransmit { src, dst, attempt } => {
                write!(f, "setup-retransmit {src}->{dst} attempt={attempt}")
            }
            RouteSetupRepair { src, dst, via } => {
                write!(f, "setup-repair {src}->{dst} via={via}")
            }
            ViewInvalidate { a, b, entries } => {
                write!(f, "view-invalidate {a}-{b} entries={entries}")
            }
            ViewDeltaApply { mode, fallbacks } => {
                write!(f, "view-delta mode={mode} fallbacks={fallbacks}")
            }
            MisbehaviorInject { ad, model } => {
                write!(f, "misbehavior-inject {ad} model={model}")
            }
            MonitorAlarm {
                detector,
                suspect,
                evidence,
            } => write!(
                f,
                "monitor-alarm {detector} suspect={suspect} evidence={evidence}"
            ),
            QuarantineEnter { ad } => write!(f, "quarantine-enter {ad}"),
            QuarantineLift { ad } => write!(f, "quarantine-lift {ad}"),
            SetupDefer { src, dst, depth } => {
                write!(f, "setup-defer {src}->{dst} depth={depth}")
            }
            SetupShed {
                src,
                dst,
                retry_after_us,
                depth,
            } => write!(
                f,
                "setup-shed {src}->{dst} retry-after={retry_after_us}us depth={depth}"
            ),
            SetupRetry {
                src,
                dst,
                attempt,
                backoff_us,
            } => write!(
                f,
                "setup-retry {src}->{dst} attempt={attempt} backoff={backoff_us}us"
            ),
            SetupAdmit {
                src,
                dst,
                rung,
                waited_us,
            } => write!(f, "setup-admit {src}->{dst} rung={rung} wait={waited_us}us"),
            SetupAbandon { src, dst, attempts } => {
                write!(f, "setup-abandon {src}->{dst} attempts={attempts}")
            }
            RsCrash { ad } => write!(f, "rs-crash {ad}"),
            RsFailover { ad, warmed } => write!(f, "rs-failover {ad} warmed={warmed}"),
            SynthBatch { ad, flows, fresh } => {
                write!(f, "synth-batch {ad} flows={flows} fresh={fresh}")
            }
            PrecomputeRefill { ad, refilled } => {
                write!(f, "precompute-refill {ad} refilled={refilled}")
            }
        }
    }
}

impl EventRecord {
    /// The record's kind tag as it appears in the JSON export.
    pub fn kind(&self) -> &'static str {
        use EventRecord::*;
        match self {
            Start { .. } => "start",
            MsgSend { .. } => "send",
            MsgDeliver { .. } => "deliver",
            MsgLost { .. } => "lost",
            MsgDrop { .. } => "drop",
            TimerFire { .. } => "timer",
            StaleTimer { .. } => "stale-timer",
            LinkUp { .. } => "link-up",
            LinkDown { .. } => "link-down",
            LinkUpMasked { .. } => "link-up-masked",
            Crash { .. } => "crash",
            Restart { .. } => "restart",
            ChanLoss { .. } => "chan-loss",
            ChanCorrupt { .. } => "chan-corrupt",
            ChanReorder { .. } => "chan-reorder",
            ChanDup { .. } => "chan-dup",
            FaultPlanApplied { .. } => "fault-plan",
            PartitionCut { .. } => "partition-cut",
            PartitionHeal { .. } => "partition-heal",
            PhaseBegin { .. } => "phase",
            LsaOriginate { .. } => "lsa-originate",
            LsaAccept { .. } => "lsa-accept",
            LsaDuplicate { .. } => "lsa-dup",
            LsaSeqJump { .. } => "lsa-seq-jump",
            LsaResync { .. } => "lsa-resync",
            RouteRecompute { .. } => "recompute",
            RouteSetupOpen { .. } => "setup-open",
            RouteSetupAck { .. } => "setup-ack",
            RouteSetupNack { .. } => "setup-nack",
            RouteSetupRetransmit { .. } => "setup-retransmit",
            RouteSetupRepair { .. } => "setup-repair",
            ViewInvalidate { .. } => "view-invalidate",
            ViewDeltaApply { .. } => "view-delta",
            MisbehaviorInject { .. } => "misbehavior-inject",
            MonitorAlarm { .. } => "monitor-alarm",
            QuarantineEnter { .. } => "quarantine-enter",
            QuarantineLift { .. } => "quarantine-lift",
            SetupDefer { .. } => "setup-defer",
            SetupShed { .. } => "setup-shed",
            SetupRetry { .. } => "setup-retry",
            SetupAdmit { .. } => "setup-admit",
            SetupAbandon { .. } => "setup-abandon",
            RsCrash { .. } => "rs-crash",
            RsFailover { .. } => "rs-failover",
            SynthBatch { .. } => "synth-batch",
            PrecomputeRefill { .. } => "precompute-refill",
        }
    }

    /// Renders one JSON object for this record stamped at `at`. Field
    /// order is fixed (`us`, `kind`, then per-kind fields in declaration
    /// order), so exports are byte-stable golden artifacts.
    pub fn to_json(&self, at: SimTime) -> String {
        let mut s = format!("{{\"us\":{},", at.as_us());
        self.write_json_fields(&mut s);
        s.push('}');
        s
    }

    /// Appends `"kind":"...",<per-kind fields>` (no braces, no timestamp)
    /// to `s`; shared by [`EventRecord::to_json`] and
    /// [`LoggedEvent::to_json`] so both renderings stay field-identical.
    fn write_json_fields(&self, s: &mut String) {
        use EventRecord::*;
        let _ = write!(s, "\"kind\":\"{}\"", self.kind());
        match *self {
            Start { ad } | Crash { ad } | Restart { ad } => {
                let _ = write!(s, ",\"ad\":{}", ad.index());
            }
            MsgSend {
                from,
                to,
                link,
                bytes,
            } => {
                let _ = write!(
                    s,
                    ",\"from\":{},\"to\":{},\"link\":{},\"bytes\":{bytes}",
                    from.index(),
                    to.index(),
                    link.index()
                );
            }
            MsgDeliver { from, to, link }
            | MsgLost { from, to, link }
            | ChanLoss { from, to, link }
            | ChanCorrupt { from, to, link }
            | ChanReorder { from, to, link }
            | ChanDup { from, to, link } => {
                let _ = write!(
                    s,
                    ",\"from\":{},\"to\":{},\"link\":{}",
                    from.index(),
                    to.index(),
                    link.index()
                );
            }
            MsgDrop { from, to } => {
                let _ = write!(s, ",\"from\":{},\"to\":{}", from.index(), to.index());
            }
            TimerFire { ad, token } | StaleTimer { ad, token } => {
                let _ = write!(s, ",\"ad\":{},\"token\":{token}", ad.index());
            }
            LinkUp { link } | LinkDown { link } | LinkUpMasked { link } => {
                let _ = write!(s, ",\"link\":{}", link.index());
            }
            FaultPlanApplied {
                link_events,
                outages,
                lossy,
            } => {
                let _ = write!(
                    s,
                    ",\"link_events\":{link_events},\"outages\":{outages},\"lossy\":{lossy}"
                );
            }
            PartitionCut { links, left, right } => {
                let _ = write!(s, ",\"links\":{links},\"left\":{left},\"right\":{right}");
            }
            PartitionHeal { links } => {
                let _ = write!(s, ",\"links\":{links}");
            }
            PhaseBegin { name } => {
                let _ = write!(s, ",\"name\":\"{}\"", json_escape(name));
            }
            LsaOriginate { origin, seq, links } => {
                let _ = write!(
                    s,
                    ",\"origin\":{},\"seq\":{seq},\"links\":{links}",
                    origin.index()
                );
            }
            LsaAccept {
                at: ad,
                origin,
                origin_seq,
            }
            | LsaDuplicate {
                at: ad,
                origin,
                origin_seq,
            } => {
                let _ = write!(
                    s,
                    ",\"at\":{},\"origin\":{},\"seq\":{origin_seq}",
                    ad.index(),
                    origin.index()
                );
            }
            LsaSeqJump { at: ad, seq } => {
                let _ = write!(s, ",\"at\":{},\"seq\":{seq}", ad.index());
            }
            LsaResync {
                at: ad,
                neighbor,
                lsas,
            } => {
                let _ = write!(
                    s,
                    ",\"at\":{},\"neighbor\":{},\"lsas\":{lsas}",
                    ad.index(),
                    neighbor.index()
                );
            }
            RouteRecompute { ad, proto, changed } => {
                let _ = write!(
                    s,
                    ",\"ad\":{},\"proto\":\"{}\",\"changed\":{changed}",
                    ad.index(),
                    json_escape(proto)
                );
            }
            RouteSetupOpen { src, dst } => {
                let _ = write!(s, ",\"src\":{},\"dst\":{}", src.index(), dst.index());
            }
            RouteSetupAck {
                src,
                dst,
                hops,
                latency_us,
            } => {
                let _ = write!(
                    s,
                    ",\"src\":{},\"dst\":{},\"hops\":{hops},\"latency_us\":{latency_us}",
                    src.index(),
                    dst.index()
                );
            }
            RouteSetupNack { src, dst, reason } => {
                let _ = write!(
                    s,
                    ",\"src\":{},\"dst\":{},\"reason\":\"{}\"",
                    src.index(),
                    dst.index(),
                    json_escape(reason)
                );
            }
            RouteSetupRetransmit { src, dst, attempt } => {
                let _ = write!(
                    s,
                    ",\"src\":{},\"dst\":{},\"attempt\":{attempt}",
                    src.index(),
                    dst.index()
                );
            }
            RouteSetupRepair { src, dst, via } => {
                let _ = write!(
                    s,
                    ",\"src\":{},\"dst\":{},\"via\":\"{}\"",
                    src.index(),
                    dst.index(),
                    json_escape(via)
                );
            }
            ViewInvalidate { a, b, entries } => {
                let _ = write!(
                    s,
                    ",\"a\":{},\"b\":{},\"entries\":{entries}",
                    a.index(),
                    b.index()
                );
            }
            ViewDeltaApply { mode, fallbacks } => {
                let _ = write!(
                    s,
                    ",\"mode\":\"{}\",\"fallbacks\":{fallbacks}",
                    json_escape(mode)
                );
            }
            MisbehaviorInject { ad, model } => {
                let _ = write!(
                    s,
                    ",\"ad\":{},\"model\":\"{}\"",
                    ad.index(),
                    json_escape(model)
                );
            }
            MonitorAlarm {
                detector,
                suspect,
                evidence,
            } => {
                let _ = write!(
                    s,
                    ",\"detector\":\"{}\",\"suspect\":{},\"evidence\":{evidence}",
                    json_escape(detector),
                    suspect.index()
                );
            }
            QuarantineEnter { ad } | QuarantineLift { ad } | RsCrash { ad } => {
                let _ = write!(s, ",\"ad\":{}", ad.index());
            }
            SetupDefer { src, dst, depth } => {
                let _ = write!(
                    s,
                    ",\"src\":{},\"dst\":{},\"depth\":{depth}",
                    src.index(),
                    dst.index()
                );
            }
            SetupShed {
                src,
                dst,
                retry_after_us,
                depth,
            } => {
                let _ = write!(
                    s,
                    ",\"src\":{},\"dst\":{},\"retry_after_us\":{retry_after_us},\"depth\":{depth}",
                    src.index(),
                    dst.index()
                );
            }
            SetupRetry {
                src,
                dst,
                attempt,
                backoff_us,
            } => {
                let _ = write!(
                    s,
                    ",\"src\":{},\"dst\":{},\"attempt\":{attempt},\"backoff_us\":{backoff_us}",
                    src.index(),
                    dst.index()
                );
            }
            SetupAdmit {
                src,
                dst,
                rung,
                waited_us,
            } => {
                let _ = write!(
                    s,
                    ",\"src\":{},\"dst\":{},\"rung\":\"{}\",\"waited_us\":{waited_us}",
                    src.index(),
                    dst.index(),
                    json_escape(rung)
                );
            }
            SetupAbandon { src, dst, attempts } => {
                let _ = write!(
                    s,
                    ",\"src\":{},\"dst\":{},\"attempts\":{attempts}",
                    src.index(),
                    dst.index()
                );
            }
            RsFailover { ad, warmed } => {
                let _ = write!(s, ",\"ad\":{},\"warmed\":{warmed}", ad.index());
            }
            SynthBatch { ad, flows, fresh } => {
                let _ = write!(
                    s,
                    ",\"ad\":{},\"flows\":{flows},\"fresh\":{fresh}",
                    ad.index()
                );
            }
            PrecomputeRefill { ad, refilled } => {
                let _ = write!(s, ",\"ad\":{},\"refilled\":{refilled}", ad.index());
            }
        }
    }

    /// The ADs this record directly involves (at most two), used by the
    /// causal analyses to attribute blast radius per root cause. Records
    /// about links or the run as a whole involve none.
    pub fn ads(&self) -> [Option<AdId>; 2] {
        use EventRecord::*;
        match *self {
            Start { ad }
            | Crash { ad }
            | Restart { ad }
            | TimerFire { ad, .. }
            | StaleTimer { ad, .. }
            | RouteRecompute { ad, .. } => [Some(ad), None],
            MsgSend { from, to, .. }
            | MsgDeliver { from, to, .. }
            | MsgLost { from, to, .. }
            | MsgDrop { from, to }
            | ChanLoss { from, to, .. }
            | ChanCorrupt { from, to, .. }
            | ChanReorder { from, to, .. }
            | ChanDup { from, to, .. } => [Some(from), Some(to)],
            LinkUp { .. }
            | LinkDown { .. }
            | LinkUpMasked { .. }
            | FaultPlanApplied { .. }
            | PartitionCut { .. }
            | PartitionHeal { .. }
            | PhaseBegin { .. }
            | ViewDeltaApply { .. } => [None, None],
            LsaOriginate { origin, .. } => [Some(origin), None],
            LsaAccept { at, origin, .. } | LsaDuplicate { at, origin, .. } => {
                [Some(at), Some(origin)]
            }
            LsaSeqJump { at, .. } => [Some(at), None],
            LsaResync { at, neighbor, .. } => [Some(at), Some(neighbor)],
            RouteSetupOpen { src, dst }
            | RouteSetupAck { src, dst, .. }
            | RouteSetupNack { src, dst, .. }
            | RouteSetupRetransmit { src, dst, .. }
            | RouteSetupRepair { src, dst, .. }
            | SetupDefer { src, dst, .. }
            | SetupShed { src, dst, .. }
            | SetupRetry { src, dst, .. }
            | SetupAdmit { src, dst, .. }
            | SetupAbandon { src, dst, .. } => [Some(src), Some(dst)],
            ViewInvalidate { a, b, .. } => [Some(a), Some(b)],
            MisbehaviorInject { ad, .. }
            | MonitorAlarm { suspect: ad, .. }
            | QuarantineEnter { ad }
            | QuarantineLift { ad }
            | RsCrash { ad }
            | RsFailover { ad, .. }
            | SynthBatch { ad, .. }
            | PrecomputeRefill { ad, .. } => [Some(ad), None],
        }
    }

    /// Whether this record is a wire message entering the channel; the
    /// storm report counts these separately from total events.
    pub fn is_message(&self) -> bool {
        matches!(self, EventRecord::MsgSend { .. })
    }
}

/// One entry in an [`EventLog`]: a typed record stamped with its
/// simulation time, its stable [`EventId`], and the id of the event that
/// caused it (`None` for causal roots: scheduled topology changes, fault
/// plans, phase markers, and externally initiated route setups).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LoggedEvent {
    /// When the event happened.
    pub at: SimTime,
    /// Stable per-stream identifier, strictly increasing in log order.
    pub id: EventId,
    /// The provoking event, if any. Always strictly smaller than `id`.
    pub cause: Option<EventId>,
    /// The typed payload.
    pub rec: EventRecord,
}

impl LoggedEvent {
    /// Renders the JSONL form with fixed field order: `us`, `id`,
    /// `cause` (omitted for roots), then the record's `kind` and fields.
    pub fn to_json(&self) -> String {
        let mut s = format!("{{\"us\":{},\"id\":{}", self.at.as_us(), self.id.0);
        if let Some(c) = self.cause {
            let _ = write!(s, ",\"cause\":{}", c.0);
        }
        s.push(',');
        self.rec.write_json_fields(&mut s);
        s.push('}');
        s
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A bounded, in-order log of typed events (ring buffer: oldest records
/// are evicted once `capacity` is reached, counted in `dropped`).
/// Capacity 0 disables recording entirely.
#[derive(Clone, Debug, Default)]
pub struct EventLog {
    records: VecDeque<LoggedEvent>,
    capacity: usize,
    /// Records discarded because the buffer was full (or disabled).
    pub dropped: u64,
    /// Next id to assign. Ids number the whole stream (they keep
    /// advancing across eviction), so retained ids are stable references.
    next_id: u64,
}

impl EventLog {
    /// A log retaining at most `capacity` most-recent records, assigning
    /// ids from 0.
    pub fn new(capacity: usize) -> EventLog {
        EventLog::with_id_base(capacity, 0)
    }

    /// A log whose ids start at `base`. Streams exported side by side
    /// (the engine's control plane at 0, the ORWG data plane at
    /// [`DATA_STREAM_ID_BASE`]) use disjoint bases so the merged stream
    /// has globally unique ids.
    pub fn with_id_base(capacity: usize, base: u64) -> EventLog {
        EventLog {
            records: VecDeque::new(),
            capacity,
            dropped: 0,
            next_id: base,
        }
    }

    /// Appends a record caused by `cause` (evicting the oldest if full)
    /// and returns its assigned id, or `None` when the log is disabled.
    pub fn push(
        &mut self,
        at: SimTime,
        cause: Option<EventId>,
        rec: EventRecord,
    ) -> Option<EventId> {
        if self.capacity == 0 {
            self.dropped += 1;
            return None;
        }
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        let id = EventId(self.next_id);
        self.next_id += 1;
        self.records.push_back(LoggedEvent { at, id, cause, rec });
        Some(id)
    }

    /// The configured capacity (0 = disabled).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates over retained records, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &LoggedEvent> {
        self.records.iter()
    }

    /// Renders the log in the legacy trace format: one
    /// `time<TAB>description` line per record. Byte-identical to what a
    /// same-capacity [`Trace`](crate::Trace) records on the same run.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for ev in &self.records {
            let _ = writeln!(out, "{}\t{}", ev.at, ev.rec);
        }
        out
    }

    /// Exports the log as JSON Lines: one object per record followed by a
    /// trailing summary line with the retained/dropped totals. Output is
    /// deterministic, so two identically-seeded runs export byte-identical
    /// files.
    pub fn export_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in &self.records {
            out.push_str(&ev.to_json());
            out.push('\n');
        }
        let _ = writeln!(
            out,
            "{{\"kind\":\"trace-summary\",\"records\":{},\"dropped\":{}}}",
            self.records.len(),
            self.dropped
        );
        out
    }

    /// Compares this log against `other` — the typed analogue of
    /// [`Trace::first_divergence`](crate::Trace::first_divergence). Unlike
    /// the legacy comparison, truncation is reported: two ring buffers
    /// that overflowed can retain identical windows while the dropped
    /// prefixes differed, so agreement under truncation is flagged as
    /// inconclusive instead of silently passing differential checks.
    pub fn first_divergence<'a>(&'a self, other: &'a EventLog) -> LogComparison<'a> {
        let mut i = 0;
        let mut a = self.records.iter();
        let mut b = other.records.iter();
        loop {
            match (a.next(), b.next()) {
                (None, None) => {
                    return if self.dropped > 0 || other.dropped > 0 {
                        LogComparison::TruncatedMatch {
                            left_dropped: self.dropped,
                            right_dropped: other.dropped,
                        }
                    } else {
                        LogComparison::Identical
                    };
                }
                (x, y) if x == y => {}
                (x, y) => {
                    return LogComparison::Diverged {
                        index: i,
                        left: x,
                        right: y,
                    }
                }
            }
            i += 1;
        }
    }
}

/// Outcome of comparing two event logs record-by-record.
#[derive(Clone, Copy, Debug)]
pub enum LogComparison<'a> {
    /// Every record matches and neither log dropped anything: the runs
    /// provably produced the same event stream.
    Identical,
    /// The retained records match, but at least one log overflowed its
    /// ring buffer — the dropped prefixes may have differed, so this is
    /// *not* proof of identical runs.
    TruncatedMatch {
        /// Records the left log dropped.
        left_dropped: u64,
        /// Records the right log dropped.
        right_dropped: u64,
    },
    /// The logs disagree at `index` (a side is `None` when that log ended
    /// first).
    Diverged {
        /// Index of the first mismatching record.
        index: usize,
        /// The left log's record there, if any.
        left: Option<&'a LoggedEvent>,
        /// The right log's record there, if any.
        right: Option<&'a LoggedEvent>,
    },
}

impl LogComparison<'_> {
    /// Whether the logs are provably identical (no divergence, no
    /// truncation).
    pub fn is_identical(&self) -> bool {
        matches!(self, LogComparison::Identical)
    }

    /// Whether the retained records match (possibly under truncation).
    pub fn records_match(&self) -> bool {
        !matches!(self, LogComparison::Diverged { .. })
    }
}

/// A fixed-bucket histogram of `u64` samples (power-of-two buckets), used
/// for latency and fan-out distributions. Bucketing is value-independent,
/// so merging and comparing histograms across runs is exact.
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: Vec<u64>,
    /// Number of samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: vec![0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        }
    }

    fn bucket_index(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            ((64 - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
        }
    }

    /// The inclusive lower bound of bucket `i`.
    fn bucket_lo(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_index(v)] += 1;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }

    /// Folds `other` into `self`. Because bucket boundaries are fixed
    /// (value-independent powers of two), a merge is exact: the result is
    /// byte-identical to one histogram that recorded both sample streams
    /// in any order. This is what lets per-lane and per-shard histograms
    /// be aggregated without breaking the determinism contract.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
        for (b, &o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    /// The arithmetic mean of recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The inclusive upper bound of bucket `i`.
    fn bucket_top(i: usize) -> u64 {
        if i + 1 < HIST_BUCKETS {
            Self::bucket_lo(i + 1) - 1
        } else {
            u64::MAX
        }
    }

    /// An estimate of the `q`-quantile (`0.0 ..= 1.0`), interpolated
    /// within the winning bucket: the target rank's position among the
    /// bucket's samples is mapped linearly onto the bucket's value range
    /// (clamped to the observed `min`/`max`). When the rank lands on the
    /// final sample the exact `max` is reported. Empty histograms report
    /// 0. For the conservative bucket-top bound, use
    /// [`Histogram::quantile_upper`].
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        if target >= self.count {
            return self.max;
        }
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if c > 0 && seen >= target {
                let lo = Self::bucket_lo(i).max(self.min);
                let hi = Self::bucket_top(i).min(self.max).max(lo);
                // Rank of the target within this bucket, at the midpoint
                // of its unit interval so the estimate sweeps (lo, hi)
                // instead of pinning to an edge.
                let frac = ((target - (seen - c)) as f64 - 0.5) / c as f64;
                let off = ((hi - lo) as f64 * frac).round() as u64;
                return lo.saturating_add(off).min(hi);
            }
        }
        self.max
    }

    /// An upper bound on the `q`-quantile: the top of the first bucket
    /// whose cumulative count reaches `q * count`, clamped to the
    /// observed `max`. This is the conservative (never under-reporting)
    /// companion of the interpolated [`Histogram::quantile`].
    pub fn quantile_upper(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_top(i).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Renders the histogram as one deterministic JSON object: summary
    /// fields plus the non-empty buckets as `[lower_bound, count]` pairs.
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p99\":{},\"buckets\":[",
            self.count,
            self.sum,
            self.min,
            self.max,
            self.quantile(0.5),
            self.quantile(0.99)
        );
        let mut first = true;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if !first {
                s.push(',');
            }
            first = false;
            let _ = write!(s, "[{},{c}]", Self::bucket_lo(i));
        }
        s.push_str("]}");
        s
    }
}

/// A registry of named counters and histograms. Names are ordinary
/// strings (conventionally `snake_case`, with `/` separating a phase
/// qualifier, e.g. `"msgs_sent/converge"`); iteration and JSON export are
/// in lexicographic name order, hence deterministic.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `n` to the named counter.
    pub fn add(&mut self, name: &str, n: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += n;
        } else {
            self.counters.insert(name.to_string(), n);
        }
    }

    /// Reads a named counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Records one sample into the named histogram (created on first use).
    pub fn record(&mut self, name: &str, v: u64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.record(v);
        } else {
            let mut h = Histogram::new();
            h.record(v);
            self.histograms.insert(name.to_string(), h);
        }
    }

    /// The named histogram, if any sample was ever recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Folds `other` into `self`: counters add, histograms
    /// [`Histogram::merge`]. Used to aggregate per-lane and per-shard
    /// registries into a run-wide view; the result is independent of
    /// merge order.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, &v) in &other.counters {
            self.add(k, v);
        }
        for (k, h) in &other.histograms {
            if let Some(mine) = self.histograms.get_mut(k) {
                mine.merge(h);
            } else {
                self.histograms.insert(k.clone(), h.clone());
            }
        }
    }

    /// Renders the registry as one deterministic JSON object with
    /// `counters` and `histograms` maps in name order.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"counters\":{");
        let mut first = true;
        for (k, v) in &self.counters {
            if !first {
                s.push(',');
            }
            first = false;
            let _ = write!(s, "\"{}\":{v}", json_escape(k));
        }
        s.push_str("},\"histograms\":{");
        first = true;
        for (k, h) in &self.histograms {
            if !first {
                s.push(',');
            }
            first = false;
            let _ = write!(s, "\"{}\":{}", json_escape(k), h.to_json());
        }
        s.push_str("}}");
        s
    }
}

/// The observability bundle carried by an engine (or the ORWG network):
/// the typed event log plus the metrics registry. The log is off by
/// default (capacity 0); metrics are always live — they are cheap and
/// experiments read them unconditionally.
#[derive(Clone, Debug, Default)]
pub struct Obs {
    /// The typed event stream (ring buffer; capacity 0 = disabled).
    pub log: EventLog,
    /// Named counters and histograms.
    pub metrics: MetricsRegistry,
}

impl Obs {
    /// An observability bundle retaining up to `capacity` events.
    pub fn new(capacity: usize) -> Obs {
        Obs {
            log: EventLog::new(capacity),
            metrics: MetricsRegistry::new(),
        }
    }

    /// A bundle with event logging disabled (metrics still live).
    pub fn disabled() -> Obs {
        Obs::new(0)
    }

    /// Records an event into the log and mirrors any ring-buffer
    /// eviction into the `events_dropped` metrics counter, so overflow
    /// is visible in `report --json` even when the log itself is only
    /// consulted for its retained window.
    pub fn record_event(
        &mut self,
        at: SimTime,
        cause: Option<EventId>,
        rec: EventRecord,
    ) -> Option<EventId> {
        let before = self.log.dropped;
        let id = self.log.push(at, cause, rec);
        if self.log.dropped > before {
            self.metrics
                .add("events_dropped", self.log.dropped - before);
        }
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_legacy_trace_strings() {
        let cases: Vec<(EventRecord, &str)> = vec![
            (EventRecord::Start { ad: AdId(0) }, "start AD0"),
            (
                EventRecord::MsgDeliver {
                    from: AdId(0),
                    to: AdId(1),
                    link: LinkId(0),
                },
                "deliver AD0->AD1 via L0",
            ),
            (
                EventRecord::MsgLost {
                    from: AdId(2),
                    to: AdId(3),
                    link: LinkId(7),
                },
                "lost AD2->AD3 via L7",
            ),
            (
                EventRecord::TimerFire {
                    ad: AdId(1),
                    token: 99,
                },
                "timer AD1 token=99",
            ),
            (
                EventRecord::StaleTimer {
                    ad: AdId(0),
                    token: 99,
                },
                "stale-timer AD0 token=99",
            ),
            (EventRecord::LinkUp { link: LinkId(1) }, "link L1 up"),
            (EventRecord::LinkDown { link: LinkId(1) }, "link L1 down"),
            (
                EventRecord::LinkUpMasked { link: LinkId(4) },
                "link L4 up-masked",
            ),
            (EventRecord::Crash { ad: AdId(5) }, "crash AD5"),
            (EventRecord::Restart { ad: AdId(5) }, "restart AD5"),
            (
                EventRecord::ChanLoss {
                    from: AdId(0),
                    to: AdId(1),
                    link: LinkId(0),
                },
                "chan-loss AD0->AD1 via L0",
            ),
            (
                EventRecord::RouteSetupNack {
                    src: AdId(1),
                    dst: AdId(2),
                    reason: "no-route",
                },
                "setup-nack AD1->AD2 reason=no-route",
            ),
            (
                EventRecord::RouteSetupRetransmit {
                    src: AdId(1),
                    dst: AdId(2),
                    attempt: 2,
                },
                "setup-retransmit AD1->AD2 attempt=2",
            ),
        ];
        for (rec, want) in cases {
            assert_eq!(rec.to_string(), want);
        }
    }

    #[test]
    fn json_export_is_stable() {
        let rec = EventRecord::MsgDeliver {
            from: AdId(0),
            to: AdId(1),
            link: LinkId(2),
        };
        assert_eq!(
            rec.to_json(SimTime(1500)),
            "{\"us\":1500,\"kind\":\"deliver\",\"from\":0,\"to\":1,\"link\":2}"
        );
        let mut log = EventLog::new(4);
        let root = log.push(SimTime(0), None, EventRecord::Start { ad: AdId(0) });
        assert_eq!(root, Some(EventId(0)));
        log.push(SimTime(1500), root, rec);
        let jsonl = log.export_jsonl();
        assert_eq!(
            jsonl,
            "{\"us\":0,\"id\":0,\"kind\":\"start\",\"ad\":0}\n\
             {\"us\":1500,\"id\":1,\"cause\":0,\"kind\":\"deliver\",\"from\":0,\"to\":1,\"link\":2}\n\
             {\"kind\":\"trace-summary\",\"records\":2,\"dropped\":0}\n"
        );
    }

    #[test]
    fn event_log_ring_and_divergence() {
        let mut a = EventLog::new(2);
        a.push(SimTime(1), None, EventRecord::Start { ad: AdId(0) });
        a.push(SimTime(2), None, EventRecord::Start { ad: AdId(1) });
        a.push(SimTime(3), None, EventRecord::Start { ad: AdId(2) });
        assert_eq!(a.len(), 2);
        assert_eq!(a.dropped, 1);
        // Ids number the whole stream: eviction does not recycle them.
        assert_eq!(a.iter().map(|ev| ev.id.0).collect::<Vec<_>>(), vec![1, 2]);
        let mut b = a.clone();
        // Retained records agree but both logs overflowed: agreement is
        // flagged as inconclusive, not reported as proof of identity.
        match a.first_divergence(&b) {
            LogComparison::TruncatedMatch {
                left_dropped: 1,
                right_dropped: 1,
            } => {}
            c => panic!("expected truncated match, got {c:?}"),
        }
        assert!(a.first_divergence(&b).records_match());
        assert!(!a.first_divergence(&b).is_identical());
        b.push(SimTime(4), None, EventRecord::Crash { ad: AdId(0) });
        match a.first_divergence(&b) {
            LogComparison::Diverged { index, left, right } => {
                assert_eq!(index, 0);
                assert!(left.is_some() && right.is_some());
            }
            c => panic!("expected divergence, got {c:?}"),
        }
        // Untruncated identical logs are provably identical.
        let mut c1 = EventLog::new(4);
        let mut c2 = EventLog::new(4);
        for log in [&mut c1, &mut c2] {
            let r = log.push(SimTime(1), None, EventRecord::Start { ad: AdId(0) });
            log.push(SimTime(2), r, EventRecord::Crash { ad: AdId(0) });
        }
        assert!(c1.first_divergence(&c2).is_identical());
        // Disabled log drops everything silently.
        let mut z = EventLog::new(0);
        assert_eq!(
            z.push(SimTime(1), None, EventRecord::Start { ad: AdId(0) }),
            None
        );
        assert!(z.is_empty());
        assert_eq!(z.dropped, 1);
        assert_eq!(z.render(), "");
    }

    #[test]
    fn obs_record_event_mirrors_drops_into_metrics() {
        let mut obs = Obs::new(1);
        obs.record_event(SimTime(1), None, EventRecord::Start { ad: AdId(0) });
        assert_eq!(obs.metrics.counter("events_dropped"), 0);
        obs.record_event(SimTime(2), None, EventRecord::Start { ad: AdId(1) });
        assert_eq!(obs.log.dropped, 1);
        assert_eq!(obs.metrics.counter("events_dropped"), 1);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        for v in [0u64, 1, 1, 2, 3, 4, 1000] {
            h.record(v);
        }
        assert_eq!(h.count, 7);
        assert_eq!(h.sum, 1011);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1000);
        assert!(h.mean() > 144.0 && h.mean() < 145.0);
        // The median rank falls in the [2,3] bucket: the upper bound is
        // the bucket top, the interpolated estimate sits inside it.
        assert_eq!(h.quantile_upper(0.5), 3);
        assert_eq!(h.quantile(0.5), 2);
        // Extreme quantiles are known exactly.
        assert_eq!(h.quantile(1.0), 1000);
        assert_eq!(h.quantile_upper(1.0), 1000);
        assert_eq!(h.quantile(0.0), 0);
        let json = h.to_json();
        assert!(json.starts_with("{\"count\":7,\"sum\":1011,\"min\":0,\"max\":1000"));
        assert!(json.contains("\"buckets\":[[0,1],[1,2],[2,2],[4,1],[512,1]]"));
        // Giant samples land in the saturating top bucket.
        let mut g = Histogram::new();
        g.record(u64::MAX);
        assert_eq!(g.quantile(0.5), u64::MAX);
        assert_eq!(g.quantile_upper(0.5), u64::MAX);
    }

    #[test]
    fn quantile_interpolates_within_bucket() {
        // {0,5,9}: the median rank (2nd of 3) falls in the [4,7] bucket
        // holding the single sample 5; interpolation reports the middle
        // of the bucket's range instead of its top.
        let mut h = Histogram::new();
        for v in [0u64, 5, 9] {
            h.record(v);
        }
        assert_eq!(h.quantile_upper(0.5), 7);
        assert_eq!(h.quantile(0.5), 6);
        assert_eq!(h.quantile(0.99), 9, "p99 rank is the last sample");
        // A full bucket: samples 8..=15 all land in [8,15]; interpolated
        // quantiles sweep the bucket instead of pinning to its top.
        let mut u = Histogram::new();
        for v in 8u64..=15 {
            u.record(v);
        }
        let q25 = u.quantile(0.25);
        let q75 = u.quantile(0.75);
        assert!(q25 < q75, "{q25} vs {q75}");
        assert!((8..=15).contains(&q25));
        assert!((8..=15).contains(&q75));
        assert_eq!(u.quantile_upper(0.25), 15);
    }

    #[test]
    fn registry_counters_histograms_and_json() {
        let mut m = MetricsRegistry::new();
        assert!(m.is_empty());
        m.add("b_counter", 2);
        m.add("a_counter", 1);
        m.add("b_counter", 3);
        m.record("lat_us", 10);
        m.record("lat_us", 20);
        assert_eq!(m.counter("b_counter"), 5);
        assert_eq!(m.counter("missing"), 0);
        assert_eq!(m.histogram("lat_us").unwrap().count, 2);
        let names: Vec<&str> = m.counters().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["a_counter", "b_counter"], "name order");
        let json = m.to_json();
        assert!(json.starts_with("{\"counters\":{\"a_counter\":1,\"b_counter\":5}"));
        assert!(json.contains("\"lat_us\":{\"count\":2"));
    }

    #[test]
    fn histogram_merge_is_exact() {
        // Merging two halves of a sample stream must be byte-identical
        // (in JSON form, which covers buckets, extremes and quantiles)
        // to one histogram that saw every sample.
        let samples: Vec<u64> = vec![0, 1, 1, 2, 3, 4, 7, 8, 1000, 65_536, 1 << 45];
        let mut whole = Histogram::new();
        for &v in &samples {
            whole.record(v);
        }
        let (a_half, b_half) = samples.split_at(4);
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for &v in a_half {
            a.record(v);
        }
        for &v in b_half {
            b.record(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.to_json(), whole.to_json());
        // Merge order does not matter either.
        let mut rev = b.clone();
        rev.merge(&a);
        assert_eq!(rev.to_json(), whole.to_json());
        // Quantiles stay stable across the merge: the saturated top
        // bucket (samples >= 2^39) still reports the exact max, and the
        // median matches the whole-stream estimate.
        assert_eq!(merged.quantile(1.0), 1 << 45);
        assert_eq!(merged.quantile(0.5), whole.quantile(0.5));
        assert_eq!(merged.quantile_upper(0.99), whole.quantile_upper(0.99));
    }

    #[test]
    fn histogram_merge_empty_edges() {
        let mut filled = Histogram::new();
        filled.record(5);
        filled.record(9);
        // Empty ← filled adopts the filled side's extremes.
        let mut empty = Histogram::new();
        empty.merge(&filled);
        assert_eq!((empty.count, empty.min, empty.max), (2, 5, 9));
        // Filled ← empty is a no-op (min must not collapse to 0).
        let mut kept = filled.clone();
        kept.merge(&Histogram::new());
        assert_eq!((kept.count, kept.min, kept.max), (2, 5, 9));
        assert_eq!(kept.to_json(), filled.to_json());
        // Empty ← empty stays empty.
        let mut e2 = Histogram::new();
        e2.merge(&Histogram::new());
        assert_eq!(e2.count, 0);
        assert_eq!(e2.quantile(0.5), 0);
    }

    #[test]
    fn registry_merge_adds_counters_and_merges_histograms() {
        let mut a = MetricsRegistry::new();
        a.add("shared", 2);
        a.add("only_a", 1);
        a.record("lat_us", 10);
        let mut b = MetricsRegistry::new();
        b.add("shared", 3);
        b.add("only_b", 7);
        b.record("lat_us", 20);
        b.record("fanout", 4);
        a.merge(&b);
        assert_eq!(a.counter("shared"), 5);
        assert_eq!(a.counter("only_a"), 1);
        assert_eq!(a.counter("only_b"), 7);
        let lat = a.histogram("lat_us").unwrap();
        assert_eq!((lat.count, lat.min, lat.max), (2, 10, 20));
        assert_eq!(a.histogram("fanout").unwrap().count, 1);
        // Merging an empty registry changes nothing.
        let snapshot = a.to_json();
        a.merge(&MetricsRegistry::new());
        assert_eq!(a.to_json(), snapshot);
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
