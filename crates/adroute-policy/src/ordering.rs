//! Can one global partial ordering express a set of policies?
//!
//! The ECMA design (paper Section 5.1.1) encodes *all* policy in a single
//! partial ordering of ADs plus the up/down forwarding rule. The paper's
//! core objection: "policies of different ADs may not be mutually
//! satisfiable. That is to say, there may not be a single partial ordering
//! that simultaneously expresses the policies of all ADs" — and when
//! policies change, "the partial ordering may need to be recomputed and may
//! require another round of negotiation".
//!
//! This module makes that claim measurable. A policy statement is reduced
//! to ordering constraints over AD ranks:
//!
//! * **Deny(b, a, c)** — AD `a` refuses to carry traffic from neighbor `b`
//!   to neighbor `c`. Expressible iff `a` sits *below* both, making the
//!   `b→a→c` traversal a valley the up/down rule forbids:
//!   `rank(a) < rank(b) ∧ rank(a) < rank(c)`.
//! * **Permit(d, a, e)** — AD `a` insists on carrying traffic from `d` to
//!   `e` (a paid transit agreement). Expressible iff the traversal is *not*
//!   a valley: `rank(a) ≥ rank(d) ∨ rank(a) ≥ rank(e)`.
//!
//! Satisfiability of a mixed set is decided exactly by a least-fixpoint
//! computation: every constraint is a monotone lower bound on some rank
//! (`rank(b) > rank(a)` raises `b`; the permit disjunction is the monotone
//! bound `rank(a) ≥ min(rank(d), rank(e))`). Starting from all-zero ranks
//! and iterating to a fixpoint yields the least solution; divergence past
//! the finite bound `n + #constraints` proves no finite solution exists.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use adroute_topology::{AdId, PartialOrder, Topology};

/// One ordering constraint derived from an AD's policy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OrderingConstraint {
    /// `Deny { via, from, to }`: AD `via` refuses transit from `from` to
    /// `to`; requires `rank(via) < rank(from)` and `rank(via) < rank(to)`.
    Deny {
        /// The refusing transit AD.
        via: AdId,
        /// Traffic arriving from this neighbor…
        from: AdId,
        /// …must not be forwarded to this neighbor.
        to: AdId,
    },
    /// `Permit { via, from, to }`: AD `via` must be able to carry transit
    /// from `from` to `to`; requires `rank(via) ≥ rank(from)` or
    /// `rank(via) ≥ rank(to)`.
    Permit {
        /// The transit AD that insists on carrying the traffic.
        via: AdId,
        /// Traffic arriving from this neighbor…
        from: AdId,
        /// …must be forwardable to this neighbor.
        to: AdId,
    },
}

/// Result of the satisfiability computation.
#[derive(Clone, Debug)]
pub enum OrderingSolution {
    /// A rank assignment satisfying every constraint (the least one).
    Satisfiable(Vec<u32>),
    /// No single ordering satisfies the constraint set; the paper's
    /// "negotiation" would be required to weaken policies.
    Unsatisfiable,
}

impl OrderingSolution {
    /// Whether a single ordering exists.
    pub fn is_satisfiable(&self) -> bool {
        matches!(self, OrderingSolution::Satisfiable(_))
    }

    /// The ranks, if satisfiable.
    pub fn ranks(&self) -> Option<&[u32]> {
        match self {
            OrderingSolution::Satisfiable(r) => Some(r),
            OrderingSolution::Unsatisfiable => None,
        }
    }

    /// Converts a satisfiable solution into a [`PartialOrder`] over `topo`.
    pub fn into_partial_order(self, topo: &Topology) -> Option<PartialOrder> {
        match self {
            OrderingSolution::Satisfiable(r) => Some(PartialOrder::from_ranks(topo, r)),
            OrderingSolution::Unsatisfiable => None,
        }
    }
}

/// Decides whether a single global ordering of the `n` ADs satisfies all
/// `constraints`, by least-fixpoint iteration (exact; see module docs).
pub fn solve_ordering(n: usize, constraints: &[OrderingConstraint]) -> OrderingSolution {
    let mut rank = vec![0u32; n];
    // Any finite solution can be compressed to ranks ≤ n + #constraints
    // (only relative order matters and each strict constraint forces at
    // most one extra level). Exceeding the bound therefore proves
    // divergence.
    let bound = (n + constraints.len() + 1) as u32;
    loop {
        let mut changed = false;
        for c in constraints {
            match *c {
                OrderingConstraint::Deny { via, from, to } => {
                    // rank(from) > rank(via) and rank(to) > rank(via).
                    let need = rank[via.index()] + 1;
                    if rank[from.index()] < need {
                        rank[from.index()] = need;
                        changed = true;
                    }
                    if rank[to.index()] < need {
                        rank[to.index()] = need;
                        changed = true;
                    }
                }
                OrderingConstraint::Permit { via, from, to } => {
                    // rank(via) ≥ min(rank(from), rank(to)).
                    let need = rank[from.index()].min(rank[to.index()]);
                    if rank[via.index()] < need {
                        rank[via.index()] = need;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            return OrderingSolution::Satisfiable(rank);
        }
        if rank.iter().any(|&r| r > bound) {
            return OrderingSolution::Unsatisfiable;
        }
    }
}

/// Decides satisfiability when ADs may be **logically replicated** into up
/// to `replicas` clusters at different ranks — the escape hatch of the
/// paper's footnote 4: "the same physical group of AD resources may be
/// replicated and represented as multiple logical clusters for the sake of
/// reflecting policy in the topology, thus allowing a wider range of
/// policies to coexist. However, logical replication requires that the
/// replicated region be assigned multiple network addresses".
///
/// Each constraint whose *via* AD is replicated is assigned to one logical
/// cluster of that AD (deny constraints round-robin; permit constraints to
/// a dedicated high cluster), and the least-fixpoint solver runs over the
/// expanded variable set. The assignment is a deterministic heuristic, so
/// `true` is sound (a replicated ordering exists) while `false` may be
/// conservative — exactly the right direction for measuring how much
/// replication *helps* (experiment E3 reports it alongside the exact
/// single-ordering result).
///
/// Returns `(satisfiable, logical_nodes)` where `logical_nodes` is the
/// total number of logical clusters (= network addresses) used.
pub fn solve_with_replication(
    n: usize,
    constraints: &[OrderingConstraint],
    replicas: usize,
) -> (bool, usize) {
    assert!(replicas >= 1);
    if replicas == 1 {
        return (solve_ordering(n, constraints).is_satisfiable(), n);
    }
    // Which ADs need replication: those appearing as `via` in any
    // constraint. Others keep one cluster.
    let mut via_count = vec![0usize; n];
    for c in constraints {
        let via = match *c {
            OrderingConstraint::Deny { via, .. } | OrderingConstraint::Permit { via, .. } => via,
        };
        via_count[via.index()] += 1;
    }
    // Logical index assignment: base[i] is the first cluster id of AD i.
    let mut base = vec![0usize; n];
    let mut total = 0usize;
    for i in 0..n {
        base[i] = total;
        total += if via_count[i] > 0 { replicas } else { 1 };
    }
    // Rewrite constraints over logical clusters. Non-via references use
    // the AD's cluster 0 (its primary address): data destined *through*
    // a replicated AD picks the FIB by address, but plain references to
    // neighbors use their primary identity.
    let mut next_deny_replica = vec![0usize; n];
    let logical =
        |ad: AdId, cluster: usize, base: &[usize]| AdId((base[ad.index()] + cluster) as u32);
    let rewritten: Vec<OrderingConstraint> = constraints
        .iter()
        .map(|c| match *c {
            OrderingConstraint::Deny { via, from, to } => {
                // Cluster layout per replicated AD: cluster 0 is the
                // primary address (what other ADs' constraints reference,
                // and where this AD's own permits live); denials
                // round-robin over the extra clusters 1..replicas, which
                // nothing else constrains.
                let r = 1 + next_deny_replica[via.index()] % (replicas - 1);
                next_deny_replica[via.index()] += 1;
                OrderingConstraint::Deny {
                    via: logical(via, r, &base),
                    from: logical(from, 0, &base),
                    to: logical(to, 0, &base),
                }
            }
            OrderingConstraint::Permit { via, from, to } => OrderingConstraint::Permit {
                // Permits stay on the primary cluster, which denials no
                // longer constrain.
                via: logical(via, 0, &base),
                from: logical(from, 0, &base),
                to: logical(to, 0, &base),
            },
        })
        .collect();
    (solve_ordering(total, &rewritten).is_satisfiable(), total)
}

/// The paper's negotiation process, modeled greedily: "If unresolvable
/// conflicts arise among policies … the relevant authority must negotiate
/// with the ADs involved to revise their policies in such a way that they
/// can be accommodated in the single partial ordering."
///
/// Constraints are admitted in order (earlier = higher priority); each one
/// that would make the set unsatisfiable is *dropped* (its AD is asked to
/// revise). Returns the satisfying ranks for the kept set and the indices
/// of dropped constraints. Greedy, hence minimal only per-prefix — but
/// deterministic, which is what the E3 measurements need.
pub fn greedy_negotiate(n: usize, constraints: &[OrderingConstraint]) -> (Vec<u32>, Vec<usize>) {
    let mut kept: Vec<OrderingConstraint> = Vec::with_capacity(constraints.len());
    let mut dropped = Vec::new();
    let mut ranks = vec![0u32; n];
    for (i, c) in constraints.iter().enumerate() {
        kept.push(*c);
        match solve_ordering(n, &kept) {
            OrderingSolution::Satisfiable(r) => ranks = r,
            OrderingSolution::Unsatisfiable => {
                kept.pop();
                dropped.push(i);
            }
        }
    }
    (ranks, dropped)
}

/// Checks a rank assignment against a constraint set (test/audit helper).
pub fn check_ordering(rank: &[u32], constraints: &[OrderingConstraint]) -> bool {
    constraints.iter().all(|c| match *c {
        OrderingConstraint::Deny { via, from, to } => {
            rank[via.index()] < rank[from.index()] && rank[via.index()] < rank[to.index()]
        }
        OrderingConstraint::Permit { via, from, to } => {
            rank[via.index()] >= rank[from.index()] || rank[via.index()] >= rank[to.index()]
        }
    })
}

/// Generates a random mixed constraint set over the neighborhoods of
/// `topo`: each constraint picks a transit AD and two distinct neighbors,
/// deny with probability `deny_frac`. This is the E3 workload.
pub fn random_constraints(
    topo: &Topology,
    count: usize,
    deny_frac: f64,
    seed: u64,
) -> Vec<OrderingConstraint> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let candidates: Vec<AdId> = topo
        .ad_ids()
        .filter(|&a| topo.full_degree(a) >= 2)
        .collect();
    let mut out = Vec::with_capacity(count);
    if candidates.is_empty() {
        return out;
    }
    let mut guard = 0;
    while out.len() < count && guard < count * 50 {
        guard += 1;
        let via = candidates[rng.gen_range(0..candidates.len())];
        let nbrs: Vec<AdId> = topo.all_neighbors(via).map(|(n, _)| n).collect();
        if nbrs.len() < 2 {
            continue;
        }
        let i = rng.gen_range(0..nbrs.len());
        let mut j = rng.gen_range(0..nbrs.len());
        if i == j {
            j = (j + 1) % nbrs.len();
        }
        let (from, to) = (nbrs[i], nbrs[j]);
        let c = if rng.gen_bool(deny_frac) {
            OrderingConstraint::Deny { via, from, to }
        } else {
            OrderingConstraint::Permit { via, from, to }
        };
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use adroute_topology::generate::{clique, line, HierarchyConfig};

    #[test]
    fn empty_set_is_satisfiable() {
        let s = solve_ordering(4, &[]);
        assert!(s.is_satisfiable());
        assert_eq!(s.ranks().unwrap(), &[0, 0, 0, 0]);
    }

    #[test]
    fn single_deny_is_satisfiable() {
        let c = [OrderingConstraint::Deny {
            via: AdId(1),
            from: AdId(0),
            to: AdId(2),
        }];
        let s = solve_ordering(3, &c);
        let r = s.ranks().unwrap().to_vec();
        assert!(check_ordering(&r, &c));
        assert!(r[1] < r[0] && r[1] < r[2]);
    }

    #[test]
    fn deny_cycle_is_unsatisfiable() {
        // a below b&c; b below c&a; c below a&b — impossible.
        let c = [
            OrderingConstraint::Deny {
                via: AdId(0),
                from: AdId(1),
                to: AdId(2),
            },
            OrderingConstraint::Deny {
                via: AdId(1),
                from: AdId(2),
                to: AdId(0),
            },
            OrderingConstraint::Deny {
                via: AdId(2),
                from: AdId(0),
                to: AdId(1),
            },
        ];
        assert!(!solve_ordering(3, &c).is_satisfiable());
    }

    #[test]
    fn permit_alone_is_trivially_satisfiable() {
        let c = [OrderingConstraint::Permit {
            via: AdId(0),
            from: AdId(1),
            to: AdId(2),
        }];
        let s = solve_ordering(3, &c);
        assert!(check_ordering(s.ranks().unwrap(), &c));
    }

    #[test]
    fn conflicting_deny_and_permit() {
        // Deny forces via below both; a Permit on the same triple demands
        // the opposite. Unsatisfiable.
        let c = [
            OrderingConstraint::Deny {
                via: AdId(0),
                from: AdId(1),
                to: AdId(2),
            },
            OrderingConstraint::Permit {
                via: AdId(0),
                from: AdId(1),
                to: AdId(2),
            },
        ];
        assert!(!solve_ordering(3, &c).is_satisfiable());
    }

    #[test]
    fn permit_chain_resolved_by_raising() {
        // Deny raises 1 and 2 above 0; Permit(via=3, from=1, to=2) then
        // requires 3 ≥ min(1,2)'s rank — solvable by raising 3.
        let c = [
            OrderingConstraint::Deny {
                via: AdId(0),
                from: AdId(1),
                to: AdId(2),
            },
            OrderingConstraint::Permit {
                via: AdId(3),
                from: AdId(1),
                to: AdId(2),
            },
        ];
        let s = solve_ordering(4, &c);
        let r = s.ranks().unwrap().to_vec();
        assert!(check_ordering(&r, &c));
        assert!(r[3] >= r[1].min(r[2]));
    }

    #[test]
    fn least_fixpoint_is_minimal() {
        let c = [OrderingConstraint::Deny {
            via: AdId(0),
            from: AdId(1),
            to: AdId(2),
        }];
        let s = solve_ordering(3, &c);
        // Least solution: via stays at 0, others at 1.
        assert_eq!(s.ranks().unwrap(), &[0, 1, 1]);
    }

    #[test]
    fn solution_converts_to_partial_order() {
        let t = line(3);
        let c = [OrderingConstraint::Deny {
            via: AdId(1),
            from: AdId(0),
            to: AdId(2),
        }];
        let po = solve_ordering(3, &c).into_partial_order(&t).unwrap();
        // 0 -> 1 is down, 1 -> 2 is up: valley forbidden — AD1's policy
        // is enforced by the ordering.
        assert!(!po.is_valley_free(&[AdId(0), AdId(1), AdId(2)]));
    }

    #[test]
    fn random_constraints_generate_and_mostly_solve_when_sparse() {
        let t = HierarchyConfig::default().generate();
        let cs = random_constraints(&t, 10, 0.5, 3);
        assert_eq!(cs.len(), 10);
        // Sparse sets on a hierarchy are usually satisfiable; just check
        // the solver terminates and any solution verifies.
        if let OrderingSolution::Satisfiable(r) = solve_ordering(t.num_ads(), &cs) {
            assert!(check_ordering(&r, &cs));
        }
    }

    #[test]
    fn dense_conflicts_eventually_unsatisfiable() {
        let t = clique(6);
        // With many deny constraints on a clique, conflicts are likely;
        // verify the solver classifies *some* dense set as unsatisfiable
        // across seeds (statistical, but deterministic given seeds).
        let mut any_unsat = false;
        for seed in 0..10 {
            let cs = random_constraints(&t, 60, 1.0, seed);
            if !solve_ordering(t.num_ads(), &cs).is_satisfiable() {
                any_unsat = true;
                break;
            }
        }
        assert!(any_unsat, "expected dense deny sets to conflict");
    }

    #[test]
    fn replication_rescues_conflicting_denials() {
        // The deny 3-cycle is unsatisfiable with one ordering, but each
        // deny can live on its AD's low-ranked logical cluster while the
        // primaries stay unordered:
        let c = [
            OrderingConstraint::Deny {
                via: AdId(0),
                from: AdId(1),
                to: AdId(2),
            },
            OrderingConstraint::Deny {
                via: AdId(1),
                from: AdId(2),
                to: AdId(0),
            },
            OrderingConstraint::Deny {
                via: AdId(2),
                from: AdId(0),
                to: AdId(1),
            },
        ];
        assert!(!solve_ordering(3, &c).is_satisfiable());
        let (sat, nodes) = solve_with_replication(3, &c, 2);
        assert!(sat, "per-AD deny clusters should break the cycle");
        assert_eq!(nodes, 6, "every AD appears as via, so all replicate");
        // A deny/permit conflict on one AD is likewise rescued: the permit
        // stays on the (unconstrained) primary cluster.
        let c2 = [
            OrderingConstraint::Deny {
                via: AdId(0),
                from: AdId(1),
                to: AdId(2),
            },
            OrderingConstraint::Permit {
                via: AdId(0),
                from: AdId(1),
                to: AdId(2),
            },
        ];
        assert!(!solve_ordering(3, &c2).is_satisfiable());
        let (sat, nodes) = solve_with_replication(3, &c2, 2);
        assert!(sat, "one extra logical cluster should resolve the conflict");
        assert!(nodes > 3, "replication costs extra addresses: {nodes}");
    }

    #[test]
    fn negotiation_drops_the_conflicting_constraint() {
        let c = [
            OrderingConstraint::Deny {
                via: AdId(0),
                from: AdId(1),
                to: AdId(2),
            },
            OrderingConstraint::Permit {
                via: AdId(0),
                from: AdId(1),
                to: AdId(2),
            },
            OrderingConstraint::Deny {
                via: AdId(3),
                from: AdId(1),
                to: AdId(2),
            },
        ];
        let (ranks, dropped) = greedy_negotiate(4, &c);
        assert_eq!(
            dropped,
            vec![1],
            "the later, conflicting permit is revised away"
        );
        let kept = [c[0], c[2]];
        assert!(check_ordering(&ranks, &kept));
    }

    #[test]
    fn negotiation_keeps_everything_when_satisfiable() {
        let t = clique(8);
        let cs = random_constraints(&t, 8, 0.3, 5);
        if solve_ordering(t.num_ads(), &cs).is_satisfiable() {
            let (ranks, dropped) = greedy_negotiate(t.num_ads(), &cs);
            assert!(dropped.is_empty());
            assert!(check_ordering(&ranks, &cs));
        }
    }

    #[test]
    fn negotiation_result_is_always_satisfiable() {
        let t = clique(8);
        for seed in 0..10 {
            let cs = random_constraints(&t, 40, 0.8, seed);
            let (ranks, dropped) = greedy_negotiate(t.num_ads(), &cs);
            let kept: Vec<OrderingConstraint> = cs
                .iter()
                .enumerate()
                .filter(|(i, _)| !dropped.contains(i))
                .map(|(_, c)| *c)
                .collect();
            assert!(check_ordering(&ranks, &kept), "seed {seed}");
        }
    }

    #[test]
    fn replication_with_one_replica_is_exact() {
        let c = [OrderingConstraint::Deny {
            via: AdId(0),
            from: AdId(1),
            to: AdId(2),
        }];
        let (sat, nodes) = solve_with_replication(3, &c, 1);
        assert!(sat);
        assert_eq!(nodes, 3);
    }

    #[test]
    fn replication_improves_satisfiable_fraction_statistically() {
        let t = clique(8);
        let mut single = 0;
        let mut doubled = 0;
        let trials = 30;
        for seed in 0..trials {
            let cs = random_constraints(&t, 30, 0.5, seed);
            if solve_ordering(t.num_ads(), &cs).is_satisfiable() {
                single += 1;
            }
            if solve_with_replication(t.num_ads(), &cs, 3).0 {
                doubled += 1;
            }
        }
        assert!(
            doubled >= single,
            "replication must never hurt: {doubled} vs {single}"
        );
        assert!(
            doubled > single,
            "with 3 clusters some conflicts should resolve"
        );
    }

    proptest::proptest! {
        /// Whenever the solver says satisfiable, the produced ranks satisfy
        /// every constraint (soundness).
        #[test]
        fn solver_soundness(seed in 0u64..500, count in 0usize..40, deny in 0.0f64..1.0) {
            let t = clique(8);
            let cs = random_constraints(&t, count, deny, seed);
            if let OrderingSolution::Satisfiable(r) = solve_ordering(t.num_ads(), &cs) {
                proptest::prop_assert!(check_ordering(&r, &cs));
            }
        }
    }
}
