//! Compact AD-id sets: the Roaring-style container behind [`AdSet`].
//!
//! Policy Terms and ORWG avoid-sets used to carry sorted `Vec<AdId>`
//! payloads whose membership tests binary-searched the whole vector on
//! every Policy-Term evaluation. At paper scale (~10⁵ ADs, Section 2.2)
//! those probes dominate route synthesis. [`AdBits`] replaces them with a
//! chunked bitset: members are split on the high 16 bits of the id into
//! chunks of 65 536 values, and each chunk stores either a sorted
//! `Vec<u16>` (sparse) or a 1024-word bitmap (dense) — the classic
//! Roaring layout. Membership is a chunk lookup plus an O(1) bit test or
//! a short binary search; set algebra works chunk-by-chunk.
//!
//! The representation is **canonical**: a chunk is an array iff its
//! cardinality is at most [`ARRAY_MAX`], chunks are sorted and non-empty.
//! Equal sets therefore have equal representations, so derived
//! `PartialEq` is semantic equality, and the custom `Ord`/`Hash`
//! (member-lexicographic, matching the old sorted-`Vec<AdId>` ordering)
//! keep every BTreeMap iteration order and golden trace stable.
//!
//! [`AdSet`]: crate::terms::AdSet

use adroute_topology::AdId;
use std::fmt;

/// Cardinality at which a chunk flips from sorted array to bitmap.
const ARRAY_MAX: usize = 4096;
/// 64-bit words per bitmap chunk (65 536 bits).
const BITMAP_WORDS: usize = 1024;

/// One chunk's members, low 16 bits only.
#[derive(Clone, PartialEq, Eq, Debug)]
enum Container {
    /// Sorted, deduplicated low halves; `len <= ARRAY_MAX`.
    Array(Vec<u16>),
    /// Dense bitmap; cardinality `> ARRAY_MAX`.
    Bitmap(Box<[u64; BITMAP_WORDS]>),
}

impl Container {
    fn len(&self) -> usize {
        match self {
            Container::Array(v) => v.len(),
            Container::Bitmap(b) => b.iter().map(|w| w.count_ones() as usize).sum(),
        }
    }

    fn contains(&self, low: u16) -> bool {
        match self {
            Container::Array(v) => v.binary_search(&low).is_ok(),
            Container::Bitmap(b) => b[low as usize >> 6] >> (low & 63) & 1 == 1,
        }
    }

    /// Restores the canonical array-vs-bitmap choice after an operation.
    fn normalize(self) -> Container {
        match self {
            Container::Array(v) if v.len() > ARRAY_MAX => {
                let mut b = Box::new([0u64; BITMAP_WORDS]);
                for low in v {
                    b[low as usize >> 6] |= 1 << (low & 63);
                }
                Container::Bitmap(b)
            }
            Container::Bitmap(b) => {
                let card: usize = b.iter().map(|w| w.count_ones() as usize).sum();
                if card <= ARRAY_MAX {
                    Container::Array(bitmap_to_array(&b))
                } else {
                    Container::Bitmap(b)
                }
            }
            arr => arr,
        }
    }

    fn to_bitmap(&self) -> Box<[u64; BITMAP_WORDS]> {
        match self {
            Container::Bitmap(b) => b.clone(),
            Container::Array(v) => {
                let mut b = Box::new([0u64; BITMAP_WORDS]);
                for &low in v {
                    b[low as usize >> 6] |= 1 << (low & 63);
                }
                b
            }
        }
    }

    fn iter(&self) -> Box<dyn Iterator<Item = u16> + '_> {
        match self {
            Container::Array(v) => Box::new(v.iter().copied()),
            Container::Bitmap(b) => Box::new(b.iter().enumerate().flat_map(|(wi, &w)| BitIter {
                word: w,
                base: (wi as u16) << 6,
            })),
        }
    }
}

/// Iterates set bits of one word as low-half values.
struct BitIter {
    word: u64,
    base: u16,
}

impl Iterator for BitIter {
    type Item = u16;
    fn next(&mut self) -> Option<u16> {
        if self.word == 0 {
            return None;
        }
        let tz = self.word.trailing_zeros() as u16;
        self.word &= self.word - 1;
        Some(self.base + tz)
    }
}

fn bitmap_to_array(b: &[u64; BITMAP_WORDS]) -> Vec<u16> {
    let mut v = Vec::new();
    for (wi, &w) in b.iter().enumerate() {
        let mut it = BitIter {
            word: w,
            base: (wi as u16) << 6,
        };
        v.extend(&mut it);
    }
    v
}

fn merge_union(a: &[u16], b: &[u16]) -> Vec<u16> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// A compact set of [`AdId`]s: the interned bitset representation behind
/// policy AD-sets. See the module docs for the layout and canonicality
/// guarantees.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct AdBits {
    /// `(high half, members)`, sorted by key, no empty chunks.
    chunks: Vec<(u16, Container)>,
    /// Cached cardinality.
    len: u64,
}

impl AdBits {
    /// The empty set.
    pub fn new() -> AdBits {
        AdBits::default()
    }

    /// Builds from any iterator of ids (sorts and deduplicates).
    pub fn from_ids(ids: impl IntoIterator<Item = AdId>) -> AdBits {
        let mut v: Vec<u32> = ids.into_iter().map(|a| a.0).collect();
        v.sort_unstable();
        v.dedup();
        let mut chunks: Vec<(u16, Container)> = Vec::new();
        for id in &v {
            let (hi, lo) = ((id >> 16) as u16, *id as u16);
            match chunks.last_mut() {
                Some((key, Container::Array(arr))) if *key == hi => arr.push(lo),
                _ => chunks.push((hi, Container::Array(vec![lo]))),
            }
        }
        let chunks = chunks
            .into_iter()
            .map(|(k, c)| (k, c.normalize()))
            .collect();
        AdBits {
            chunks,
            len: v.len() as u64,
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the set has no members.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Membership test: chunk lookup + bit test / short binary search.
    pub fn contains(&self, ad: AdId) -> bool {
        let (hi, lo) = ((ad.0 >> 16) as u16, ad.0 as u16);
        match self.chunks.binary_search_by_key(&hi, |&(k, _)| k) {
            Ok(i) => self.chunks[i].1.contains(lo),
            Err(_) => false,
        }
    }

    /// Members in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = AdId> + '_ {
        self.chunks.iter().flat_map(|(key, c)| {
            let base = (*key as u32) << 16;
            c.iter().map(move |lo| AdId(base | lo as u32))
        })
    }

    /// Inserts one id. Returns whether it was new.
    pub fn insert(&mut self, ad: AdId) -> bool {
        if self.contains(ad) {
            return false;
        }
        let (hi, lo) = ((ad.0 >> 16) as u16, ad.0 as u16);
        match self.chunks.binary_search_by_key(&hi, |&(k, _)| k) {
            Ok(i) => {
                let c = std::mem::replace(&mut self.chunks[i].1, Container::Array(Vec::new()));
                let c = match c {
                    Container::Array(mut v) => {
                        let pos = v.binary_search(&lo).unwrap_err();
                        v.insert(pos, lo);
                        Container::Array(v).normalize()
                    }
                    Container::Bitmap(mut b) => {
                        b[lo as usize >> 6] |= 1 << (lo & 63);
                        Container::Bitmap(b)
                    }
                };
                self.chunks[i].1 = c;
            }
            Err(i) => self.chunks.insert(i, (hi, Container::Array(vec![lo]))),
        }
        self.len += 1;
        true
    }

    /// Binary set operation driven by per-chunk closures. `keep_lone_a` /
    /// `keep_lone_b` say what happens to chunks present on only one side.
    fn zip_chunks(
        &self,
        other: &AdBits,
        keep_lone_a: bool,
        keep_lone_b: bool,
        combine: impl Fn(&Container, &Container) -> Container,
    ) -> AdBits {
        let mut chunks: Vec<(u16, Container)> = Vec::new();
        let (a, b) = (&self.chunks, &other.chunks);
        let (mut i, mut j) = (0, 0);
        while i < a.len() || j < b.len() {
            let take = match (a.get(i), b.get(j)) {
                (Some(&(ka, _)), Some(&(kb, _))) => ka.cmp(&kb),
                (Some(_), None) => std::cmp::Ordering::Less,
                (None, Some(_)) => std::cmp::Ordering::Greater,
                (None, None) => unreachable!(),
            };
            match take {
                std::cmp::Ordering::Less => {
                    if keep_lone_a {
                        chunks.push(a[i].clone());
                    }
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    if keep_lone_b {
                        chunks.push(b[j].clone());
                    }
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    let c = combine(&a[i].1, &b[j].1).normalize();
                    if c.len() > 0 {
                        chunks.push((a[i].0, c));
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        let len = chunks.iter().map(|(_, c)| c.len() as u64).sum();
        AdBits { chunks, len }
    }

    /// Set union.
    pub fn union(&self, other: &AdBits) -> AdBits {
        self.zip_chunks(other, true, true, |x, y| match (x, y) {
            (Container::Array(a), Container::Array(b)) => Container::Array(merge_union(a, b)),
            _ => {
                let mut m = x.to_bitmap();
                match y {
                    Container::Bitmap(n) => {
                        for (w, v) in m.iter_mut().zip(n.iter()) {
                            *w |= v;
                        }
                    }
                    Container::Array(v) => {
                        for &lo in v {
                            m[lo as usize >> 6] |= 1 << (lo & 63);
                        }
                    }
                }
                Container::Bitmap(m)
            }
        })
    }

    /// Set intersection.
    pub fn intersect(&self, other: &AdBits) -> AdBits {
        self.zip_chunks(other, false, false, |x, y| {
            // Probing the smaller side into the larger keeps this linear
            // in the sparse container.
            let (probe, into) = if x.len() <= y.len() { (x, y) } else { (y, x) };
            Container::Array(probe.iter().filter(|&lo| into.contains(lo)).collect())
        })
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: &AdBits) -> AdBits {
        self.zip_chunks(other, true, false, |x, y| {
            Container::Array(x.iter().filter(|&lo| !y.contains(lo)).collect())
        })
    }
}

impl FromIterator<AdId> for AdBits {
    fn from_iter<T: IntoIterator<Item = AdId>>(iter: T) -> AdBits {
        AdBits::from_ids(iter)
    }
}

impl PartialOrd for AdBits {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Member-lexicographic ordering — identical to comparing the old sorted
/// `Vec<AdId>` payloads, so every consumer that sorted on AD-sets (e.g.
/// path-vector RIB keys) keeps its iteration order and golden traces.
impl Ord for AdBits {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        let mut a = self.iter();
        let mut b = other.iter();
        loop {
            match (a.next(), b.next()) {
                (Some(x), Some(y)) => match x.cmp(&y) {
                    std::cmp::Ordering::Equal => continue,
                    ord => return ord,
                },
                (None, None) => return std::cmp::Ordering::Equal,
                (None, Some(_)) => return std::cmp::Ordering::Less,
                (Some(_), None) => return std::cmp::Ordering::Greater,
            }
        }
    }
}

impl std::hash::Hash for AdBits {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.len.hash(state);
        for ad in self.iter() {
            ad.0.hash(state);
        }
    }
}

impl fmt::Display for AdBits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, ad) in self.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{ad}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(ids: impl IntoIterator<Item = u32>) -> AdBits {
        AdBits::from_ids(ids.into_iter().map(AdId))
    }

    #[test]
    fn build_dedup_and_contains() {
        let b = bits([3, 1, 3, 70_000, 2]);
        assert_eq!(b.len(), 4);
        assert!(b.contains(AdId(1)));
        assert!(b.contains(AdId(70_000)));
        assert!(!b.contains(AdId(4)));
        assert!(!b.contains(AdId(65_536)));
        let members: Vec<u32> = b.iter().map(|a| a.0).collect();
        assert_eq!(members, vec![1, 2, 3, 70_000]);
    }

    #[test]
    fn empty_set() {
        let e = AdBits::new();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert!(!e.contains(AdId(0)));
        assert_eq!(e.iter().count(), 0);
        assert_eq!(e, bits([]));
    }

    #[test]
    fn dense_chunk_flips_to_bitmap_and_back() {
        // > ARRAY_MAX members in one chunk forces the bitmap form.
        let big = bits(0..5000);
        assert_eq!(big.len(), 5000);
        assert!(matches!(big.chunks[0].1, Container::Bitmap(_)));
        for probe in [0u32, 2500, 4999] {
            assert!(big.contains(AdId(probe)));
        }
        assert!(!big.contains(AdId(5000)));
        // Subtracting back below the threshold restores the array form —
        // canonicality is what makes derived equality semantic.
        let small = big.difference(&bits(1000..5000));
        assert!(matches!(small.chunks[0].1, Container::Array(_)));
        assert_eq!(small, bits(0..1000));
        let roundtrip: Vec<u32> = big.iter().map(|a| a.0).collect();
        assert_eq!(roundtrip, (0..5000).collect::<Vec<_>>());
    }

    #[test]
    fn set_algebra_matches_pointwise() {
        let a = bits([1, 2, 3, 100_000]);
        let b = bits([2, 3, 4, 131_072]);
        let u = a.union(&b);
        let i = a.intersect(&b);
        let d = a.difference(&b);
        for probe in [0, 1, 2, 3, 4, 5, 100_000, 131_072, 200_000] {
            let ad = AdId(probe);
            assert_eq!(u.contains(ad), a.contains(ad) || b.contains(ad), "{probe}");
            assert_eq!(i.contains(ad), a.contains(ad) && b.contains(ad), "{probe}");
            assert_eq!(d.contains(ad), a.contains(ad) && !b.contains(ad), "{probe}");
        }
        assert_eq!(u.len(), 6);
        assert_eq!(i.len(), 2);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn mixed_density_algebra() {
        let dense = bits(0..5000);
        let sparse = bits([10, 4999, 6000]);
        let u = dense.union(&sparse);
        assert_eq!(u.len(), 5001);
        assert!(u.contains(AdId(6000)));
        let i = dense.intersect(&sparse);
        assert_eq!(i, bits([10, 4999]));
        let d = dense.difference(&sparse);
        assert_eq!(d.len(), 4998);
        assert!(!d.contains(AdId(10)));
        // Union of two dense chunks stays a bitmap.
        let dense2 = bits(3000..9000);
        let uu = dense.union(&dense2);
        assert_eq!(uu.len(), 9000);
        assert!(matches!(uu.chunks[0].1, Container::Bitmap(_)));
    }

    #[test]
    fn insert_grows_and_dedups() {
        let mut b = bits([5]);
        assert!(b.insert(AdId(70_000)));
        assert!(!b.insert(AdId(5)));
        assert!(b.insert(AdId(1)));
        assert_eq!(b.len(), 3);
        assert_eq!(b, bits([1, 5, 70_000]));
    }

    #[test]
    fn ordering_is_member_lexicographic() {
        // Matches Vec<AdId> lexicographic comparison on sorted members.
        assert!(bits([1, 2]) < bits([1, 3]));
        assert!(bits([1]) < bits([1, 2]));
        assert!(bits([]) < bits([0]));
        assert_eq!(bits([7, 9]).cmp(&bits([9, 7])), std::cmp::Ordering::Equal);
    }

    #[test]
    fn hash_agrees_with_equality() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |b: &AdBits| {
            let mut s = DefaultHasher::new();
            b.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&bits([1, 70_000])), h(&bits([70_000, 1, 1])));
        assert_ne!(h(&bits([1])), h(&bits([2])));
    }

    #[test]
    fn display_is_comma_joined() {
        assert_eq!(bits([2, 1]).to_string(), "AD1,AD2");
        assert_eq!(AdBits::new().to_string(), "");
    }
}
