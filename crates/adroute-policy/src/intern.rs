//! AD-set interning for hot route-synthesis paths.
//!
//! Route Servers compose avoid-sets constantly: every `alternatives(k)`
//! probe, resilient open, and quarantine sweep widens a source's avoid-set
//! with one more AD and re-runs the search. At scale the same handful of
//! widened sets are rebuilt thousands of times. [`AdSetPool`] deduplicates
//! sets behind small integer handles ([`AdSetRef`]) and memoizes the
//! widen-by-one-AD operation, so repeated compositions cost a hash probe
//! instead of a set union.

use crate::bits::AdBits;
use crate::terms::AdSet;
use adroute_topology::AdId;
use std::collections::HashMap;

/// Handle to an interned [`AdSet`] inside an [`AdSetPool`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct AdSetRef(u32);

/// Deduplicating store of [`AdSet`]s with a memoized widen operation.
#[derive(Clone, Default, Debug)]
pub struct AdSetPool {
    sets: Vec<AdSet>,
    index: HashMap<AdSet, AdSetRef>,
    /// `(base set, added AD) -> widened set`, the hot composition.
    widened: HashMap<(AdSetRef, AdId), AdSetRef>,
    hits: u64,
    misses: u64,
}

impl AdSetPool {
    /// An empty pool.
    pub fn new() -> AdSetPool {
        AdSetPool::default()
    }

    /// Interns a set, returning its stable handle. Equal sets (canonical
    /// representation makes equality semantic) share one handle.
    pub fn intern(&mut self, set: AdSet) -> AdSetRef {
        if let Some(&r) = self.index.get(&set) {
            self.hits += 1;
            return r;
        }
        self.misses += 1;
        let r = AdSetRef(self.sets.len() as u32);
        self.sets.push(set.clone());
        self.index.insert(set, r);
        r
    }

    /// Resolves a handle.
    pub fn get(&self, r: AdSetRef) -> &AdSet {
        &self.sets[r.0 as usize]
    }

    /// Membership test without materialising anything.
    pub fn contains(&self, r: AdSetRef, ad: AdId) -> bool {
        self.get(r).contains(ad)
    }

    /// Returns the handle for `base ∪ {ad}`, computing the union only the
    /// first time a given `(base, ad)` pair is seen.
    pub fn widen(&mut self, base: AdSetRef, ad: AdId) -> AdSetRef {
        if let Some(&r) = self.widened.get(&(base, ad)) {
            self.hits += 1;
            return r;
        }
        let widened = self.get(base).union(&AdSet::Only(AdBits::from_ids([ad])));
        let r = self.intern(widened);
        self.widened.insert((base, ad), r);
        r
    }

    /// Number of distinct sets interned.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Whether the pool holds no sets.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// `(cache hits, misses)` across intern + widen, for observability.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_dedups_equal_sets() {
        let mut pool = AdSetPool::new();
        let a = pool.intern(AdSet::only([AdId(2), AdId(1)]));
        let b = pool.intern(AdSet::only([AdId(1), AdId(2), AdId(2)]));
        assert_eq!(a, b);
        assert_eq!(pool.len(), 1);
        assert_eq!(pool.get(a), &AdSet::only([AdId(1), AdId(2)]));
    }

    #[test]
    fn widen_is_union_and_memoized() {
        let mut pool = AdSetPool::new();
        let base = pool.intern(AdSet::only([AdId(1)]));
        let w1 = pool.widen(base, AdId(5));
        assert_eq!(pool.get(w1), &AdSet::only([AdId(1), AdId(5)]));
        let (_, misses_before) = pool.stats();
        let w2 = pool.widen(base, AdId(5));
        assert_eq!(w1, w2);
        assert_eq!(pool.stats().1, misses_before, "second widen is a pure hit");
        // Widening an Except shrinks the exclusion list.
        let ex = pool.intern(AdSet::except([AdId(5), AdId(6)]));
        let wex = pool.widen(ex, AdId(5));
        assert_eq!(pool.get(wex), &AdSet::except([AdId(6)]));
        // Any stays Any.
        let any = pool.intern(AdSet::Any);
        let wany = pool.widen(any, AdId(1));
        assert_eq!(pool.get(wany), &AdSet::Any);
    }

    #[test]
    fn contains_through_handle() {
        let mut pool = AdSetPool::new();
        let r = pool.intern(AdSet::except([AdId(3)]));
        assert!(pool.contains(r, AdId(4)));
        assert!(!pool.contains(r, AdId(3)));
    }
}
