//! The global policy view: one [`TransitPolicy`] per AD.
//!
//! In link-state architectures this is the database every AD converges to
//! after Policy Terms are flooded; in the oracle it is simply ground truth.

use adroute_topology::{AdId, Topology};

use crate::terms::TransitPolicy;

/// One transit policy per AD, indexed by AD id.
#[derive(Clone, Debug)]
pub struct PolicyDb {
    policies: Vec<TransitPolicy>,
}

impl PolicyDb {
    /// A database in which every AD permits all transit at cost zero.
    pub fn permissive(topo: &Topology) -> PolicyDb {
        PolicyDb {
            policies: topo.ad_ids().map(TransitPolicy::permit_all).collect(),
        }
    }

    /// Builds from an explicit per-AD vector.
    ///
    /// # Panics
    /// Panics if `policies[i].ad != i` for some `i`.
    pub fn from_policies(policies: Vec<TransitPolicy>) -> PolicyDb {
        for (i, p) in policies.iter().enumerate() {
            assert_eq!(p.ad.index(), i, "policy vector must be dense and in order");
        }
        PolicyDb { policies }
    }

    /// The policy of `ad`.
    #[inline]
    pub fn policy(&self, ad: AdId) -> &TransitPolicy {
        &self.policies[ad.index()]
    }

    /// Mutable access, for policy-change experiments.
    #[inline]
    pub fn policy_mut(&mut self, ad: AdId) -> &mut TransitPolicy {
        &mut self.policies[ad.index()]
    }

    /// Replaces the policy of one AD (a "policy change" event).
    pub fn set_policy(&mut self, policy: TransitPolicy) {
        let i = policy.ad.index();
        self.policies[i] = policy;
    }

    /// Number of ADs covered.
    pub fn len(&self) -> usize {
        self.policies.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.policies.is_empty()
    }

    /// Iterator over all policies in AD order.
    pub fn iter(&self) -> impl Iterator<Item = &TransitPolicy> {
        self.policies.iter()
    }

    /// Total number of policy terms across all ADs.
    pub fn total_terms(&self) -> usize {
        self.policies.iter().map(|p| p.num_terms()).sum()
    }

    /// Whether any AD's policy conditions on the flow **destination**.
    ///
    /// When false, transit evaluation is identical for every flow in a
    /// batch that shares `src`/`qos`/`uci`/`time`, and a single
    /// multi-destination search ([`crate::legality::legal_routes_sweep`])
    /// is exactly equivalent to one search per destination.
    pub fn dst_sensitive(&self) -> bool {
        self.policies.iter().any(|p| p.conditions_on_dst())
    }

    /// Total encoded size of all policies (the flooding payload of a
    /// link-state policy architecture).
    pub fn total_encoded_size(&self) -> usize {
        self.policies.iter().map(|p| p.encoded_size()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::terms::{PolicyAction, TransitPolicy};
    use adroute_topology::generate::line;

    #[test]
    fn permissive_covers_all() {
        let t = line(4);
        let db = PolicyDb::permissive(&t);
        assert_eq!(db.len(), 4);
        assert!(!db.is_empty());
        assert_eq!(db.total_terms(), 0);
        for ad in t.ad_ids() {
            assert_eq!(db.policy(ad).ad, ad);
        }
    }

    #[test]
    fn set_and_mutate() {
        let t = line(3);
        let mut db = PolicyDb::permissive(&t);
        db.set_policy(TransitPolicy::deny_all(AdId(1)));
        let f = crate::FlowSpec::best_effort(AdId(0), AdId(2));
        assert_eq!(
            db.policy(AdId(1))
                .evaluate(&f, Some(AdId(0)), Some(AdId(2))),
            None
        );
        db.policy_mut(AdId(1)).default = PolicyAction::Permit { cost: 3 };
        assert_eq!(
            db.policy(AdId(1))
                .evaluate(&f, Some(AdId(0)), Some(AdId(2))),
            Some(3)
        );
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn misordered_policies_rejected() {
        PolicyDb::from_policies(vec![TransitPolicy::permit_all(AdId(1))]);
    }

    #[test]
    fn sizes_accumulate() {
        let t = line(3);
        let mut db = PolicyDb::permissive(&t);
        let before = db.total_encoded_size();
        db.policy_mut(AdId(1)).push_term(vec![], PolicyAction::Deny);
        assert!(db.total_encoded_size() > before);
        assert_eq!(db.total_terms(), 1);
        assert_eq!(db.iter().count(), 3);
    }
}
