//! Policy Terms: explicit, advertisable policy statements (RFC 1102 /
//! paper Section 4.2).
//!
//! "Link or path updates contain administrative constraints and service
//! guarantees that apply to the resources they advertise. We refer to these
//! constraints as Policy Terms (PTs)." Each AD groups its PTs into a
//! [`TransitPolicy`]; sources hold private [`RouteSelection`] criteria.

use adroute_topology::AdId;
use std::fmt;

use crate::bits::AdBits;
use crate::class::{FlowSpec, QosClass, TimeOfDay, UserClass};

/// A set of ADs, as appears in policy conditions.
///
/// Payloads are [`AdBits`] — chunked Roaring-style bitsets — so membership
/// is a bit test rather than a binary search over a `Vec<AdId>`, and set
/// algebra runs chunk-at-a-time. The canonical bitset form keeps derived
/// equality semantic and the member-lexicographic `Ord` identical to the
/// old sorted-`Vec` ordering.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum AdSet {
    /// Matches every AD.
    Any,
    /// Matches exactly the listed ADs.
    Only(AdBits),
    /// Matches every AD except the listed ones.
    Except(AdBits),
}

impl AdSet {
    /// Builds an [`AdSet::Only`] from an iterator, sorting and deduplicating.
    pub fn only(ads: impl IntoIterator<Item = AdId>) -> AdSet {
        AdSet::Only(AdBits::from_ids(ads))
    }

    /// Builds an [`AdSet::Except`] from an iterator, sorting and deduplicating.
    pub fn except(ads: impl IntoIterator<Item = AdId>) -> AdSet {
        AdSet::Except(AdBits::from_ids(ads))
    }

    /// Membership test.
    pub fn contains(&self, ad: AdId) -> bool {
        match self {
            AdSet::Any => true,
            AdSet::Only(v) => v.contains(ad),
            AdSet::Except(v) => !v.contains(ad),
        }
    }

    /// Approximate encoded size in bytes, for message accounting.
    ///
    /// Deliberately kept at the id-list encoding (1 tag byte + 4 bytes per
    /// member) regardless of the in-memory bitset form, so protocol message
    /// sizes are unchanged by the representation switch.
    pub fn encoded_size(&self) -> usize {
        match self {
            AdSet::Any => 1,
            AdSet::Only(v) | AdSet::Except(v) => 1 + 4 * v.len(),
        }
    }

    /// Whether this set matches no AD at all.
    pub fn is_empty_set(&self) -> bool {
        matches!(self, AdSet::Only(v) if v.is_empty())
    }

    /// Set intersection. Path-vector protocols narrow a route's
    /// distribution scope by intersecting it with each transit AD's policy
    /// scope (paper Section 5.2: "additional policy constraints can be
    /// added" as updates propagate).
    pub fn intersect(&self, other: &AdSet) -> AdSet {
        use AdSet::*;
        match (self, other) {
            (Any, x) | (x, Any) => x.clone(),
            (Only(a), Only(b)) => AdSet::Only(a.intersect(b)),
            (Only(a), Except(b)) | (Except(b), Only(a)) => AdSet::Only(a.difference(b)),
            (Except(a), Except(b)) => AdSet::Except(a.union(b)),
        }
    }

    /// Set difference `self \ removed` where `removed` is a plain list.
    pub fn subtract(&self, removed: &[AdId]) -> AdSet {
        self.intersect(&AdSet::Except(AdBits::from_ids(removed.iter().copied())))
    }

    /// Set union. Route Servers widen a *avoid* set with additional ADs
    /// while hunting for alternate routes; union (not replacement) keeps
    /// the source's original selection criteria in force.
    pub fn union(&self, other: &AdSet) -> AdSet {
        use AdSet::*;
        match (self, other) {
            (Any, _) | (_, Any) => Any,
            (Only(a), Only(b)) => AdSet::Only(a.union(b)),
            (Only(a), Except(b)) | (Except(b), Only(a)) => AdSet::Except(b.difference(a)),
            (Except(a), Except(b)) => AdSet::Except(a.intersect(b)),
        }
    }
}

impl fmt::Display for AdSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdSet::Any => f.write_str("*"),
            AdSet::Only(v) => write!(f, "{{{v}}}"),
            AdSet::Except(v) => write!(f, "!{{{v}}}"),
        }
    }
}

/// One condition of a Policy Term. A term matches a traversal when **all**
/// its conditions match (conjunction).
///
/// The ORWG architecture's "path constraints restrict access to the path
/// based on source AD, destination AD, previous AD, or next AD in the
/// path" (paper Section 5.4.1), plus QOS, user class, and "other global
/// conditions" such as time of day.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PolicyCondition {
    /// Source AD of the flow must be in the set.
    SrcIn(AdSet),
    /// Destination AD of the flow must be in the set.
    DstIn(AdSet),
    /// The AD the packet arrives from must be in the set. Matches only
    /// when a previous AD exists (i.e. the evaluating AD is not the
    /// source).
    PrevIn(AdSet),
    /// The AD the packet will be handed to must be in the set. Matches
    /// only when a next AD exists (i.e. the evaluating AD is not the
    /// destination).
    NextIn(AdSet),
    /// Requested QOS must be one of the listed classes.
    QosIn(Vec<QosClass>),
    /// User class must be one of the listed classes.
    UciIn(Vec<UserClass>),
    /// Flow time must lie in `[start, end)` (may wrap midnight).
    TimeWindow(TimeOfDay, TimeOfDay),
}

impl PolicyCondition {
    /// Evaluates this condition for a traversal of the policy's AD by
    /// `flow`, arriving from `prev` and departing toward `next` (`None`
    /// when the evaluating AD is the flow's source / destination
    /// respectively).
    pub fn matches(&self, flow: &FlowSpec, prev: Option<AdId>, next: Option<AdId>) -> bool {
        match self {
            PolicyCondition::SrcIn(s) => s.contains(flow.src),
            PolicyCondition::DstIn(s) => s.contains(flow.dst),
            PolicyCondition::PrevIn(s) => prev.is_some_and(|p| s.contains(p)),
            PolicyCondition::NextIn(s) => next.is_some_and(|n| s.contains(n)),
            PolicyCondition::QosIn(qs) => qs.contains(&flow.qos),
            PolicyCondition::UciIn(us) => us.contains(&flow.uci),
            PolicyCondition::TimeWindow(s, e) => flow.time.in_window(*s, *e),
        }
    }

    /// Approximate encoded size in bytes.
    pub fn encoded_size(&self) -> usize {
        1 + match self {
            PolicyCondition::SrcIn(s)
            | PolicyCondition::DstIn(s)
            | PolicyCondition::PrevIn(s)
            | PolicyCondition::NextIn(s) => s.encoded_size(),
            PolicyCondition::QosIn(v) => 1 + v.len(),
            PolicyCondition::UciIn(v) => 1 + v.len(),
            PolicyCondition::TimeWindow(..) => 4,
        }
    }
}

/// What a matching Policy Term decides.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PolicyAction {
    /// Transit permitted, at the given advertised cost (charging /
    /// accounting surrogate; added to the route metric).
    Permit {
        /// Cost the AD charges for this class of transit.
        cost: u32,
    },
    /// Transit denied.
    Deny,
}

/// Identifier of a Policy Term: the advertising AD plus a per-AD serial.
/// Setup packets cite PT ids so Policy Gateways can validate against the
/// exact terms the source believed it was using.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PtId {
    /// Advertising AD.
    pub ad: AdId,
    /// Serial within the AD's policy.
    pub serial: u16,
}

impl fmt::Display for PtId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.ad, self.serial)
    }
}

/// One Policy Term: conditions plus an action.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PolicyTerm {
    /// Identifier (advertising AD + serial).
    pub id: PtId,
    /// Conjunctive conditions; an empty list matches everything.
    pub conditions: Vec<PolicyCondition>,
    /// Permit (with cost) or deny.
    pub action: PolicyAction,
}

impl PolicyTerm {
    /// Whether every condition matches the given traversal.
    pub fn matches(&self, flow: &FlowSpec, prev: Option<AdId>, next: Option<AdId>) -> bool {
        self.conditions.iter().all(|c| c.matches(flow, prev, next))
    }

    /// Approximate encoded size in bytes (id + action + conditions).
    pub fn encoded_size(&self) -> usize {
        6 + 5
            + self
                .conditions
                .iter()
                .map(|c| c.encoded_size())
                .sum::<usize>()
    }
}

/// The transit policy of one AD: an ordered list of Policy Terms with
/// first-match-wins semantics and a default action.
///
/// Per paper Section 2.3 this controls **use of the AD's resources for
/// transit**, not end-system access: flows sourced at or destined to the
/// AD itself are always permitted (network access control is a separate,
/// orthogonal mechanism — Section 3).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TransitPolicy {
    /// The AD whose policy this is.
    pub ad: AdId,
    /// Ordered terms; the first matching term decides.
    pub terms: Vec<PolicyTerm>,
    /// Action when no term matches.
    pub default: PolicyAction,
}

impl TransitPolicy {
    /// A policy that permits all transit at cost 0 — the "least restrictive
    /// polic\[y\] possible" the paper urges ADs to adopt.
    pub fn permit_all(ad: AdId) -> TransitPolicy {
        TransitPolicy {
            ad,
            terms: Vec::new(),
            default: PolicyAction::Permit { cost: 0 },
        }
    }

    /// A policy that denies all transit — what a stub or multi-homed stub
    /// advertises.
    pub fn deny_all(ad: AdId) -> TransitPolicy {
        TransitPolicy {
            ad,
            terms: Vec::new(),
            default: PolicyAction::Deny,
        }
    }

    /// Appends a term, assigning the next serial. Returns the new term's id.
    pub fn push_term(&mut self, conditions: Vec<PolicyCondition>, action: PolicyAction) -> PtId {
        let id = PtId {
            ad: self.ad,
            serial: self.terms.len() as u16,
        };
        self.terms.push(PolicyTerm {
            id,
            conditions,
            action,
        });
        id
    }

    /// Whether this policy is a *restriction* of `old`: every traversal it
    /// permits, `old` permitted at the same cost — so replacing `old` with
    /// `self` can only remove routes, never create or cheapen one.
    ///
    /// The check is conservative (sound, not complete). It returns true
    /// when the policies are identical, when `self` permits nothing at all,
    /// or when `self` is `old` with extra `Deny` terms inserted (term ids
    /// may be renumbered; conditions and actions must match). Anything the
    /// check cannot prove restrictive is reported `false`, and consumers
    /// fall back to treating the change as potentially route-creating.
    pub fn is_restriction_of(&self, old: &TransitPolicy) -> bool {
        if self.ad != old.ad {
            return false;
        }
        // A policy that permits no transit at all restricts anything.
        if self.default == PolicyAction::Deny
            && self.terms.iter().all(|t| t.action == PolicyAction::Deny)
        {
            return true;
        }
        if self.default != old.default {
            return false;
        }
        // `old.terms` must appear as a subsequence of `self.terms`, and
        // every inserted term must deny: first-match-wins then either hits
        // an inserted Deny (traversal newly denied — restrictive) or the
        // same deciding term as before.
        let mut remaining = old.terms.iter().peekable();
        for t in &self.terms {
            if let Some(o) = remaining.peek() {
                if t.conditions == o.conditions && t.action == o.action {
                    remaining.next();
                    continue;
                }
            }
            if t.action != PolicyAction::Deny {
                return false;
            }
        }
        remaining.peek().is_none()
    }

    /// Evaluates a transit traversal: the first matching term decides,
    /// otherwise the default.
    ///
    /// Returns `Some(cost)` if permitted (the AD's advertised transit
    /// charge) or `None` if denied. `prev`/`next` are `None` at the flow's
    /// source / destination respectively — but note that an AD never
    /// evaluates its own transit policy for flows it originates or
    /// terminates (see [`TransitPolicy::evaluate_on_path`]).
    pub fn evaluate(&self, flow: &FlowSpec, prev: Option<AdId>, next: Option<AdId>) -> Option<u32> {
        let action = self
            .terms
            .iter()
            .find(|t| t.matches(flow, prev, next))
            .map(|t| t.action)
            .unwrap_or(self.default);
        match action {
            PolicyAction::Permit { cost } => Some(cost),
            PolicyAction::Deny => None,
        }
    }

    /// Like [`TransitPolicy::evaluate`], but also returns the id of the
    /// deciding term (`None` for the default action). Policy Gateways use
    /// this to check the PT ids cited in setup packets.
    pub fn evaluate_with_term(
        &self,
        flow: &FlowSpec,
        prev: Option<AdId>,
        next: Option<AdId>,
    ) -> (Option<u32>, Option<PtId>) {
        if let Some(t) = self.terms.iter().find(|t| t.matches(flow, prev, next)) {
            match t.action {
                PolicyAction::Permit { cost } => (Some(cost), Some(t.id)),
                PolicyAction::Deny => (None, Some(t.id)),
            }
        } else {
            match self.default {
                PolicyAction::Permit { cost } => (Some(cost), None),
                PolicyAction::Deny => (None, None),
            }
        }
    }

    /// Evaluates this AD's traversal as position `i` of `path` for `flow`.
    /// Endpoints are always permitted at cost 0 (transit policy governs
    /// transit only).
    ///
    /// # Panics
    /// Panics if `path[i]` is not this policy's AD.
    pub fn evaluate_on_path(&self, flow: &FlowSpec, path: &[AdId], i: usize) -> Option<u32> {
        assert_eq!(path[i], self.ad);
        if i == 0 || i == path.len() - 1 {
            return Some(0);
        }
        self.evaluate(flow, Some(path[i - 1]), Some(path[i + 1]))
    }

    /// Whether any term conditions on the flow's **destination** AD.
    ///
    /// Destination-conditioned terms make transit evaluation vary across
    /// flows that differ only in `dst` — the one flow attribute a batched
    /// multi-destination synthesis sweep does not hold fixed — so batching
    /// layers use this to decide when a shared search is sound.
    pub fn conditions_on_dst(&self) -> bool {
        self.terms.iter().any(|t| {
            t.conditions
                .iter()
                .any(|c| matches!(c, PolicyCondition::DstIn(_)))
        })
    }

    /// Approximate encoded size in bytes of the whole policy as advertised.
    pub fn encoded_size(&self) -> usize {
        4 + 1 + self.terms.iter().map(|t| t.encoded_size()).sum::<usize>()
    }

    /// Number of terms.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }
}

/// Source-side route selection criteria (paper Section 2.3: "policies of
/// the source", which under source routing "can [be kept] private from
/// other ADs" — Section 5.4).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RouteSelection {
    /// ADs the source refuses to route through (e.g. untrusted carriers).
    pub avoid: AdSet,
    /// Maximum acceptable total route cost (metric + transit charges), if
    /// bounded.
    pub max_cost: Option<u64>,
    /// Maximum acceptable AD-hop count, if bounded.
    pub max_hops: Option<usize>,
}

impl RouteSelection {
    /// No source-side constraints.
    pub fn unconstrained() -> RouteSelection {
        RouteSelection {
            avoid: AdSet::Only(AdBits::new()),
            max_cost: None,
            max_hops: None,
        }
    }

    /// Avoid the listed transit ADs.
    pub fn avoiding(ads: impl IntoIterator<Item = AdId>) -> RouteSelection {
        RouteSelection {
            avoid: AdSet::only(ads),
            max_cost: None,
            max_hops: None,
        }
    }

    /// Whether a complete route satisfies these criteria. The avoid-set is
    /// checked against *transit* ADs only (a source cannot avoid itself or
    /// its destination).
    pub fn accepts(&self, path: &[AdId], cost: u64) -> bool {
        if let Some(mc) = self.max_cost {
            if cost > mc {
                return false;
            }
        }
        if let Some(mh) = self.max_hops {
            if path.len().saturating_sub(1) > mh {
                return false;
            }
        }
        if path.len() > 2 {
            for ad in &path[1..path.len() - 1] {
                if self.avoid.contains(*ad) {
                    return false;
                }
            }
        }
        true
    }

    /// Whether a transit AD is acceptable to this source.
    pub fn allows_transit(&self, ad: AdId) -> bool {
        !self.avoid.contains(ad)
    }
}

impl Default for RouteSelection {
    fn default() -> Self {
        RouteSelection::unconstrained()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::FlowSpec;

    fn flow() -> FlowSpec {
        FlowSpec::best_effort(AdId(0), AdId(9))
    }

    #[test]
    fn adset_membership() {
        assert!(AdSet::Any.contains(AdId(5)));
        let only = AdSet::only([AdId(3), AdId(1), AdId(3)]);
        assert!(only.contains(AdId(1)));
        assert!(!only.contains(AdId(2)));
        let except = AdSet::except([AdId(4)]);
        assert!(except.contains(AdId(5)));
        assert!(!except.contains(AdId(4)));
    }

    #[test]
    fn adset_intersection() {
        let only12 = AdSet::only([AdId(1), AdId(2)]);
        let only23 = AdSet::only([AdId(2), AdId(3)]);
        let except2 = AdSet::except([AdId(2)]);
        assert_eq!(AdSet::Any.intersect(&only12), only12);
        assert_eq!(only12.intersect(&only23), AdSet::only([AdId(2)]));
        assert_eq!(only12.intersect(&except2), AdSet::only([AdId(1)]));
        assert_eq!(
            except2.intersect(&AdSet::except([AdId(3)])),
            AdSet::except([AdId(2), AdId(3)])
        );
        assert!(only12.intersect(&AdSet::only([AdId(9)])).is_empty_set());
        assert!(!AdSet::Any.is_empty_set());
        assert!(!except2.is_empty_set());
    }

    #[test]
    fn adset_subtraction() {
        let s = AdSet::only([AdId(1), AdId(2), AdId(3)]);
        assert_eq!(s.subtract(&[AdId(2)]), AdSet::only([AdId(1), AdId(3)]));
        assert_eq!(AdSet::Any.subtract(&[AdId(5)]), AdSet::except([AdId(5)]));
        // Subtracting from Except accumulates exclusions.
        assert_eq!(
            AdSet::except([AdId(1)]).subtract(&[AdId(2), AdId(2)]),
            AdSet::except([AdId(1), AdId(2)])
        );
    }

    #[test]
    fn adset_union() {
        let only12 = AdSet::only([AdId(1), AdId(2)]);
        let only23 = AdSet::only([AdId(2), AdId(3)]);
        let except12 = AdSet::except([AdId(1), AdId(2)]);
        assert_eq!(AdSet::Any.union(&only12), AdSet::Any);
        assert_eq!(
            only12.union(&only23),
            AdSet::only([AdId(1), AdId(2), AdId(3)])
        );
        // Only ∪ Except removes the named ADs from the exclusion list.
        assert_eq!(only12.union(&except12), AdSet::Except(AdBits::new()));
        assert_eq!(
            AdSet::only([AdId(1)]).union(&except12),
            AdSet::except([AdId(2)])
        );
        // Except ∪ Except keeps only shared exclusions.
        assert_eq!(
            except12.union(&AdSet::except([AdId(2), AdId(3)])),
            AdSet::except([AdId(2)])
        );
        // Union never shrinks membership.
        for ad in [AdId(1), AdId(2), AdId(3), AdId(4)] {
            for (x, y) in [(&only12, &only23), (&only12, &except12)] {
                let u = x.union(y);
                assert_eq!(u.contains(ad), x.contains(ad) || y.contains(ad));
            }
        }
    }

    #[test]
    fn restriction_check_is_sound_and_conservative() {
        let base = {
            let mut p = TransitPolicy::permit_all(AdId(5));
            p.push_term(
                vec![PolicyCondition::SrcIn(AdSet::only([AdId(0)]))],
                PolicyAction::Permit { cost: 2 },
            );
            p
        };
        // Identity.
        assert!(base.is_restriction_of(&base));
        // Permits-nothing restricts anything.
        assert!(TransitPolicy::deny_all(AdId(5)).is_restriction_of(&base));
        // Inserting a Deny term (before or after) is a restriction even
        // though later term serials shift.
        let mut narrowed = TransitPolicy::permit_all(AdId(5));
        narrowed.push_term(
            vec![PolicyCondition::DstIn(AdSet::only([AdId(9)]))],
            PolicyAction::Deny,
        );
        narrowed.push_term(
            vec![PolicyCondition::SrcIn(AdSet::only([AdId(0)]))],
            PolicyAction::Permit { cost: 2 },
        );
        assert!(narrowed.is_restriction_of(&base));
        assert!(!base.is_restriction_of(&narrowed), "loosening is not");
        // A new Permit term is not provably restrictive.
        let mut widened = base.clone();
        widened.push_term(vec![], PolicyAction::Permit { cost: 1 });
        assert!(!widened.is_restriction_of(&base));
        // Different AD or flipped default: rejected.
        assert!(!TransitPolicy::deny_all(AdId(6)).is_restriction_of(&base));
        assert!(!TransitPolicy::permit_all(AdId(5))
            .is_restriction_of(&TransitPolicy::deny_all(AdId(5))));
        // Dropping one of old's terms is rejected (could cheapen a route).
        assert!(!TransitPolicy::permit_all(AdId(5)).is_restriction_of(&base));
    }

    #[test]
    fn adset_display_and_size() {
        assert_eq!(AdSet::Any.to_string(), "*");
        assert_eq!(AdSet::only([AdId(1), AdId(2)]).to_string(), "{AD1,AD2}");
        assert_eq!(AdSet::except([AdId(1)]).to_string(), "!{AD1}");
        assert_eq!(AdSet::Any.encoded_size(), 1);
        assert_eq!(AdSet::only([AdId(1), AdId(2)]).encoded_size(), 9);
    }

    #[test]
    fn conditions_match() {
        let f = flow();
        assert!(PolicyCondition::SrcIn(AdSet::only([AdId(0)])).matches(&f, None, None));
        assert!(!PolicyCondition::SrcIn(AdSet::only([AdId(1)])).matches(&f, None, None));
        assert!(PolicyCondition::DstIn(AdSet::Any).matches(&f, None, None));
        // Prev/Next require the hop to exist.
        let prev = PolicyCondition::PrevIn(AdSet::Any);
        assert!(prev.matches(&f, Some(AdId(2)), None));
        assert!(!prev.matches(&f, None, None));
        let next = PolicyCondition::NextIn(AdSet::only([AdId(7)]));
        assert!(next.matches(&f, None, Some(AdId(7))));
        assert!(!next.matches(&f, None, Some(AdId(8))));
        assert!(!next.matches(&f, None, None));
        assert!(PolicyCondition::QosIn(vec![QosClass(0)]).matches(&f, None, None));
        assert!(!PolicyCondition::QosIn(vec![QosClass(1)]).matches(&f, None, None));
        assert!(PolicyCondition::UciIn(vec![UserClass(0)]).matches(&f, None, None));
        assert!(
            PolicyCondition::TimeWindow(TimeOfDay::hm(9, 0), TimeOfDay::hm(17, 0))
                .matches(&f, None, None)
        );
        assert!(
            !PolicyCondition::TimeWindow(TimeOfDay::hm(0, 0), TimeOfDay::hm(1, 0))
                .matches(&f, None, None)
        );
    }

    #[test]
    fn first_match_wins() {
        let mut p = TransitPolicy::permit_all(AdId(5));
        // Deny traffic sourced at AD0 …
        p.push_term(
            vec![PolicyCondition::SrcIn(AdSet::only([AdId(0)]))],
            PolicyAction::Deny,
        );
        // … but this later, broader permit never fires for AD0 sources.
        p.push_term(vec![], PolicyAction::Permit { cost: 7 });
        let f = flow();
        assert_eq!(p.evaluate(&f, Some(AdId(1)), Some(AdId(2))), None);
        let f2 = FlowSpec::best_effort(AdId(3), AdId(9));
        assert_eq!(p.evaluate(&f2, Some(AdId(1)), Some(AdId(2))), Some(7));
    }

    #[test]
    fn default_action_applies() {
        let p = TransitPolicy::deny_all(AdId(5));
        assert_eq!(p.evaluate(&flow(), Some(AdId(1)), Some(AdId(2))), None);
        let p2 = TransitPolicy::permit_all(AdId(5));
        assert_eq!(p2.evaluate(&flow(), Some(AdId(1)), Some(AdId(2))), Some(0));
    }

    #[test]
    fn evaluate_with_term_reports_decider() {
        let mut p = TransitPolicy::deny_all(AdId(5));
        let id = p.push_term(
            vec![PolicyCondition::SrcIn(AdSet::only([AdId(0)]))],
            PolicyAction::Permit { cost: 2 },
        );
        let (cost, pt) = p.evaluate_with_term(&flow(), Some(AdId(1)), Some(AdId(2)));
        assert_eq!(cost, Some(2));
        assert_eq!(pt, Some(id));
        let f2 = FlowSpec::best_effort(AdId(3), AdId(9));
        let (cost2, pt2) = p.evaluate_with_term(&f2, Some(AdId(1)), Some(AdId(2)));
        assert_eq!(cost2, None);
        assert_eq!(pt2, None); // default decided
    }

    #[test]
    fn endpoints_always_permitted() {
        let p = TransitPolicy::deny_all(AdId(0));
        let f = flow(); // src is AD0
        let path = [AdId(0), AdId(5), AdId(9)];
        assert_eq!(p.evaluate_on_path(&f, &path, 0), Some(0));
        let pd = TransitPolicy::deny_all(AdId(9));
        assert_eq!(pd.evaluate_on_path(&f, &path, 2), Some(0));
    }

    #[test]
    fn route_selection_criteria() {
        let rs = RouteSelection::avoiding([AdId(5)]);
        assert!(!rs.accepts(&[AdId(0), AdId(5), AdId(9)], 10));
        assert!(rs.accepts(&[AdId(0), AdId(6), AdId(9)], 10));
        // endpoints not subject to avoid
        assert!(rs.accepts(&[AdId(0), AdId(9)], 1));
        assert!(!rs.allows_transit(AdId(5)));

        let rs2 = RouteSelection {
            max_cost: Some(5),
            ..RouteSelection::unconstrained()
        };
        assert!(!rs2.accepts(&[AdId(0), AdId(1), AdId(9)], 6));
        assert!(rs2.accepts(&[AdId(0), AdId(1), AdId(9)], 5));

        let rs3 = RouteSelection {
            max_hops: Some(2),
            ..RouteSelection::unconstrained()
        };
        assert!(rs3.accepts(&[AdId(0), AdId(1), AdId(9)], 100));
        assert!(!rs3.accepts(&[AdId(0), AdId(1), AdId(2), AdId(9)], 100));
    }

    #[test]
    fn term_serials_increment() {
        let mut p = TransitPolicy::permit_all(AdId(3));
        let a = p.push_term(vec![], PolicyAction::Deny);
        let b = p.push_term(vec![], PolicyAction::Deny);
        assert_eq!(a.serial, 0);
        assert_eq!(b.serial, 1);
        assert_eq!(a.ad, AdId(3));
        assert_eq!(p.num_terms(), 2);
    }

    #[test]
    fn encoded_sizes_positive() {
        let mut p = TransitPolicy::permit_all(AdId(3));
        let empty = p.encoded_size();
        p.push_term(
            vec![PolicyCondition::SrcIn(AdSet::only([AdId(0), AdId(1)]))],
            PolicyAction::Deny,
        );
        assert!(p.encoded_size() > empty);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::class::FlowSpec;
    use proptest::prelude::*;

    fn arb_adset() -> impl Strategy<Value = AdSet> {
        prop_oneof![
            Just(AdSet::Any),
            proptest::collection::vec(0u32..20, 0..6)
                .prop_map(|v| AdSet::only(v.into_iter().map(AdId))),
            proptest::collection::vec(0u32..20, 0..6)
                .prop_map(|v| AdSet::except(v.into_iter().map(AdId))),
        ]
    }

    proptest! {
        /// Intersection agrees with pointwise conjunction of membership.
        #[test]
        fn intersection_is_pointwise_and(a in arb_adset(), b in arb_adset(), ad in 0u32..25) {
            let ad = AdId(ad);
            let i = a.intersect(&b);
            prop_assert_eq!(i.contains(ad), a.contains(ad) && b.contains(ad));
        }

        /// Intersection is commutative in semantics.
        #[test]
        fn intersection_commutes(a in arb_adset(), b in arb_adset(), ad in 0u32..25) {
            let ad = AdId(ad);
            prop_assert_eq!(a.intersect(&b).contains(ad), b.intersect(&a).contains(ad));
        }

        /// Subtraction removes exactly the listed members.
        #[test]
        fn subtraction_is_pointwise(a in arb_adset(),
                                    removed in proptest::collection::vec(0u32..20, 0..6),
                                    ad in 0u32..25) {
            let removed: Vec<AdId> = removed.into_iter().map(AdId).collect();
            let ad = AdId(ad);
            let s = a.subtract(&removed);
            prop_assert_eq!(s.contains(ad), a.contains(ad) && !removed.contains(&ad));
        }

        /// An empty-set check is consistent with membership.
        #[test]
        fn emptiness_consistent(a in arb_adset()) {
            if a.is_empty_set() {
                for x in 0..25u32 {
                    prop_assert!(!a.contains(AdId(x)));
                }
            }
        }

        /// `evaluate` and `evaluate_with_term` always agree on the verdict,
        /// and any cited PT really is the first matching term.
        #[test]
        fn evaluate_consistency(seed in 0u64..500, nterms in 0usize..5) {
            use rand::rngs::SmallRng;
            use rand::{Rng, SeedableRng};
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut p = TransitPolicy::permit_all(AdId(9));
            for _ in 0..nterms {
                let cond = match rng.gen_range(0..3) {
                    0 => PolicyCondition::SrcIn(AdSet::only(
                        (0..rng.gen_range(0..4)).map(|_| AdId(rng.gen_range(0..6))))),
                    1 => PolicyCondition::QosIn(vec![QosClass(rng.gen_range(0..3))]),
                    _ => PolicyCondition::PrevIn(AdSet::only(
                        (0..rng.gen_range(0..4)).map(|_| AdId(rng.gen_range(0..6))))),
                };
                let action = if rng.gen_bool(0.5) {
                    PolicyAction::Deny
                } else {
                    PolicyAction::Permit { cost: rng.gen_range(0..9) }
                };
                p.push_term(vec![cond], action);
            }
            let flow = FlowSpec::best_effort(AdId(rng.gen_range(0..6)), AdId(rng.gen_range(0..6)))
                .with_qos(QosClass(rng.gen_range(0..3)));
            let prev = Some(AdId(rng.gen_range(0..6)));
            let next = Some(AdId(rng.gen_range(0..6)));
            let v1 = p.evaluate(&flow, prev, next);
            let (v2, cited) = p.evaluate_with_term(&flow, prev, next);
            prop_assert_eq!(v1, v2);
            if let Some(pt) = cited {
                let first = p.terms.iter().find(|t| t.matches(&flow, prev, next)).unwrap();
                prop_assert_eq!(first.id, pt);
            } else {
                prop_assert!(p.terms.iter().all(|t| !t.matches(&flow, prev, next)));
            }
        }
    }
}
