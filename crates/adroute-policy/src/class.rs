//! Traffic classification: the packet attributes policies discriminate on.
//!
//! Paper Section 2.3: "Common source and transit policies may be based on
//! such things as the source and destination of the traffic, the other ADs
//! in the path, Quality of Service (QOS), time of day, User Class
//! Identifier, …".

use adroute_topology::AdId;
use std::fmt;

/// A Quality-of-Service class index.
///
/// The paper treats QOS routing as "multiple spanning trees, one for each
/// QOS" (Section 2.3); protocols in this workspace maintain per-QOS state
/// keyed by this index. Class 0 is conventional best effort.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct QosClass(pub u8);

impl QosClass {
    /// Best-effort service, supported by every AD.
    pub const BEST_EFFORT: QosClass = QosClass(0);
}

impl fmt::Display for QosClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "qos{}", self.0)
    }
}

/// A User Class Identifier (UCI) — e.g. "government", "commercial",
/// "research" traffic. Policies may carry UCI-specific terms.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct UserClass(pub u8);

impl UserClass {
    /// The default, unprivileged user class.
    pub const DEFAULT: UserClass = UserClass(0);
}

impl fmt::Display for UserClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "uci{}", self.0)
    }
}

/// Time of day in minutes since midnight, `0..1440`.
///
/// Policies may restrict transit to certain windows (e.g. "bulk research
/// traffic only off-peak").
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TimeOfDay(pub u16);

impl TimeOfDay {
    /// Noon; the default evaluation time.
    pub const NOON: TimeOfDay = TimeOfDay(12 * 60);

    /// Constructs from an hour and minute.
    ///
    /// # Panics
    /// Panics if `hour >= 24` or `minute >= 60`.
    pub fn hm(hour: u16, minute: u16) -> TimeOfDay {
        assert!(hour < 24 && minute < 60);
        TimeOfDay(hour * 60 + minute)
    }

    /// Whether this time lies in `[start, end)`, treating windows that wrap
    /// midnight correctly (e.g. 22:00–06:00).
    pub fn in_window(self, start: TimeOfDay, end: TimeOfDay) -> bool {
        if start <= end {
            self >= start && self < end
        } else {
            self >= start || self < end
        }
    }
}

impl Default for TimeOfDay {
    fn default() -> Self {
        TimeOfDay::NOON
    }
}

impl fmt::Display for TimeOfDay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:02}:{:02}", self.0 / 60, self.0 % 60)
    }
}

/// The classification of one flow of inter-AD traffic: everything a policy
/// may condition on, except the path itself.
///
/// A `FlowSpec` is what a Route Server synthesizes a policy route *for*,
/// and what a Policy Gateway validates packets *against*. The paper notes
/// (Section 5.4.1) that one policy route "can support multiple pairs of
/// hosts in the source and destination ADs" — hence host addresses do not
/// appear here, only AD-granularity attributes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FlowSpec {
    /// Originating AD.
    pub src: AdId,
    /// Destination AD.
    pub dst: AdId,
    /// Requested Quality of Service.
    pub qos: QosClass,
    /// User class of the originator.
    pub uci: UserClass,
    /// Time of day at which the flow is (being) routed.
    pub time: TimeOfDay,
}

impl FlowSpec {
    /// A best-effort, default-class flow at noon.
    pub fn best_effort(src: AdId, dst: AdId) -> FlowSpec {
        FlowSpec {
            src,
            dst,
            qos: QosClass::BEST_EFFORT,
            uci: UserClass::DEFAULT,
            time: TimeOfDay::NOON,
        }
    }

    /// Same flow with a different QOS class.
    pub fn with_qos(mut self, qos: QosClass) -> FlowSpec {
        self.qos = qos;
        self
    }

    /// Same flow with a different user class.
    pub fn with_uci(mut self, uci: UserClass) -> FlowSpec {
        self.uci = uci;
        self
    }

    /// Same flow at a different time of day.
    pub fn at(mut self, time: TimeOfDay) -> FlowSpec {
        self.time = time;
        self
    }
}

impl fmt::Display for FlowSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}->{} {} {} @{}",
            self.src, self.dst, self.qos, self.uci, self.time
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_windows() {
        let t = TimeOfDay::hm(12, 0);
        assert!(t.in_window(TimeOfDay::hm(9, 0), TimeOfDay::hm(17, 0)));
        assert!(!t.in_window(TimeOfDay::hm(13, 0), TimeOfDay::hm(17, 0)));
        // wrapping window 22:00-06:00
        let night = TimeOfDay::hm(23, 30);
        assert!(night.in_window(TimeOfDay::hm(22, 0), TimeOfDay::hm(6, 0)));
        let dawn = TimeOfDay::hm(5, 59);
        assert!(dawn.in_window(TimeOfDay::hm(22, 0), TimeOfDay::hm(6, 0)));
        assert!(!t.in_window(TimeOfDay::hm(22, 0), TimeOfDay::hm(6, 0)));
        // boundary: start inclusive, end exclusive
        assert!(TimeOfDay::hm(9, 0).in_window(TimeOfDay::hm(9, 0), TimeOfDay::hm(10, 0)));
        assert!(!TimeOfDay::hm(10, 0).in_window(TimeOfDay::hm(9, 0), TimeOfDay::hm(10, 0)));
    }

    #[test]
    #[should_panic]
    fn invalid_time_rejected() {
        TimeOfDay::hm(24, 0);
    }

    #[test]
    fn flow_builders() {
        let f = FlowSpec::best_effort(AdId(1), AdId(2))
            .with_qos(QosClass(3))
            .with_uci(UserClass(1))
            .at(TimeOfDay::hm(3, 0));
        assert_eq!(f.qos, QosClass(3));
        assert_eq!(f.uci, UserClass(1));
        assert_eq!(f.time, TimeOfDay(180));
        assert_eq!(f.src, AdId(1));
    }

    #[test]
    fn display_forms() {
        let f = FlowSpec::best_effort(AdId(1), AdId(2));
        assert_eq!(f.to_string(), "AD1->AD2 qos0 uci0 @12:00");
        assert_eq!(TimeOfDay::hm(7, 5).to_string(), "07:05");
    }
}
