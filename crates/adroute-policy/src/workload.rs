//! Seeded policy workload generators.
//!
//! The paper's scaling arguments all hinge on **policy granularity** — how
//! many distinct packet classifications (source AD, UCI, QOS, time) transit
//! policies discriminate between. [`PolicyWorkload`] generates per-AD
//! [`TransitPolicy`]s with tunable granularity so the experiments can sweep
//! it, holding topology fixed.
//!
//! The ingredients model the policies of paper Sections 2.1/2.3:
//!
//! * **no-transit stubs** — stub and multi-homed-stub ADs deny all transit
//!   ("multi-homed ADs … wish to disallow any transit traffic");
//! * **customer-cone transit** — a transit AD carries only traffic sourced
//!   or destined within its hierarchical subtree (the classic
//!   provider/customer AUP, e.g. the NSFNET academic-use policy), backbones
//!   excepted;
//! * **source-specific denials** — a transit AD refuses traffic from a
//!   random set of source ADs (political/economic exclusions);
//! * **class terms** — UCI- and QOS-specific permits with distinct charges,
//!   multiplying the distinct classifications;
//! * **time windows** — off-peak-only transit for some classes.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use adroute_topology::{AdId, AdRole, LinkKind, Topology};

use crate::class::{QosClass, TimeOfDay, UserClass};
use crate::db::PolicyDb;
use crate::terms::{AdSet, PolicyAction, PolicyCondition, TransitPolicy};

/// Configuration of a random policy workload.
#[derive(Clone, Debug)]
pub struct PolicyWorkload {
    /// Stub / multi-homed-stub ADs deny all transit.
    pub no_transit_stubs: bool,
    /// Non-backbone transit ADs restrict transit to their customer cone.
    pub customer_cone: bool,
    /// Fraction of transit ADs that deny a random set of source ADs.
    pub source_specific_frac: f64,
    /// Expected number of ADs in each source-specific denial set.
    pub denial_set_size: usize,
    /// Number of distinct QOS classes (beyond best effort) that receive
    /// dedicated permit terms with class-specific charges.
    pub qos_classes: u8,
    /// Number of distinct user classes that receive dedicated terms.
    pub uci_classes: u8,
    /// Fraction of transit ADs whose low-priority term is restricted to an
    /// off-peak time window.
    pub time_window_frac: f64,
    /// Base transit charge range (inclusive) for permit terms.
    pub cost_range: (u32, u32),
    /// RNG seed.
    pub seed: u64,
}

impl PolicyWorkload {
    /// A permissive workload: only the structural no-transit-stub policies.
    pub fn structural(seed: u64) -> PolicyWorkload {
        PolicyWorkload {
            no_transit_stubs: true,
            customer_cone: false,
            source_specific_frac: 0.0,
            denial_set_size: 0,
            qos_classes: 0,
            uci_classes: 0,
            time_window_frac: 0.0,
            cost_range: (0, 0),
            seed,
        }
    }

    /// The default mixed workload used across experiments: structural
    /// policies plus moderate customer-cone and source-specific policy.
    pub fn default_mix(seed: u64) -> PolicyWorkload {
        PolicyWorkload {
            no_transit_stubs: true,
            customer_cone: true,
            source_specific_frac: 0.3,
            denial_set_size: 3,
            qos_classes: 2,
            uci_classes: 2,
            time_window_frac: 0.2,
            cost_range: (0, 4),
            seed,
        }
    }

    /// A workload whose granularity (number of distinct classifications
    /// each transit AD discriminates) scales with `g`; used by the
    /// table-blowup experiments.
    pub fn granularity(g: u8, seed: u64) -> PolicyWorkload {
        PolicyWorkload {
            no_transit_stubs: true,
            customer_cone: false,
            source_specific_frac: 0.5,
            denial_set_size: g as usize,
            qos_classes: g,
            uci_classes: g,
            time_window_frac: 0.0,
            cost_range: (0, 4),
            seed,
        }
    }

    /// Generates the per-AD policies for `topo`.
    pub fn generate(&self, topo: &Topology) -> PolicyDb {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let cones = if self.customer_cone {
            Some(customer_cones(topo))
        } else {
            None
        };

        let policies = topo
            .ads()
            .map(|ad| {
                let mut p = TransitPolicy::permit_all(ad.id);
                match ad.role {
                    AdRole::Stub | AdRole::MultiHomedStub if self.no_transit_stubs => {
                        return TransitPolicy::deny_all(ad.id);
                    }
                    _ => {}
                }

                // Source-specific denials first (first match wins).
                if self.source_specific_frac > 0.0
                    && rng.gen_bool(self.source_specific_frac)
                    && self.denial_set_size > 0
                    && topo.num_ads() > 2
                {
                    let denied: Vec<AdId> = (0..self.denial_set_size)
                        .map(|_| AdId(rng.gen_range(0..topo.num_ads() as u32)))
                        .filter(|&d| d != ad.id)
                        .collect();
                    if !denied.is_empty() {
                        p.push_term(
                            vec![PolicyCondition::SrcIn(AdSet::only(denied))],
                            PolicyAction::Deny,
                        );
                    }
                }

                // Class-specific permit terms with distinct charges.
                for q in 1..=self.qos_classes {
                    let cost = rng.gen_range(self.cost_range.0..=self.cost_range.1 + u32::from(q));
                    p.push_term(
                        vec![PolicyCondition::QosIn(vec![QosClass(q)])],
                        PolicyAction::Permit { cost },
                    );
                }
                for u in 1..=self.uci_classes {
                    let cost = rng.gen_range(self.cost_range.0..=self.cost_range.1);
                    let mut conds = vec![PolicyCondition::UciIn(vec![UserClass(u)])];
                    if rng.gen_bool(self.time_window_frac) {
                        // Off-peak only: 19:00-07:00.
                        conds.push(PolicyCondition::TimeWindow(
                            TimeOfDay::hm(19, 0),
                            TimeOfDay::hm(7, 0),
                        ));
                    }
                    p.push_term(conds, PolicyAction::Permit { cost });
                }

                // Customer-cone restriction: permit only traffic sourced or
                // destined inside the cone; backbones carry everything.
                if let Some(cones) = &cones {
                    if ad.level != adroute_topology::AdLevel::Backbone {
                        let cone = &cones[ad.id.index()];
                        if !cone.is_empty() {
                            p.push_term(
                                vec![PolicyCondition::SrcIn(AdSet::only(cone.iter().copied()))],
                                PolicyAction::Permit {
                                    cost: rng.gen_range(self.cost_range.0..=self.cost_range.1),
                                },
                            );
                            p.push_term(
                                vec![PolicyCondition::DstIn(AdSet::only(cone.iter().copied()))],
                                PolicyAction::Permit {
                                    cost: rng.gen_range(self.cost_range.0..=self.cost_range.1),
                                },
                            );
                            p.default = PolicyAction::Deny;
                            return p;
                        }
                    }
                }

                let base = rng.gen_range(self.cost_range.0..=self.cost_range.1);
                p.default = PolicyAction::Permit { cost: base };
                p
            })
            .collect();

        PolicyDb::from_policies(policies)
    }
}

/// For each AD, the set of ADs in its hierarchical subtree (its "customer
/// cone"), itself included: descendants reachable by repeatedly following
/// hierarchical links downward (higher level → lower level).
pub fn customer_cones(topo: &Topology) -> Vec<Vec<AdId>> {
    let n = topo.num_ads();
    let mut cones: Vec<Vec<AdId>> = vec![Vec::new(); n];
    for ad in topo.ad_ids() {
        // BFS downward over hierarchical links.
        let mut cone = vec![ad];
        let mut seen = vec![false; n];
        seen[ad.index()] = true;
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(ad);
        while let Some(cur) = queue.pop_front() {
            let cur_level = topo.ad(cur).level;
            for (nbr, link) in topo.all_neighbors(cur) {
                if topo.link(link).kind == LinkKind::Hierarchical
                    && topo.ad(nbr).level < cur_level
                    && !seen[nbr.index()]
                {
                    seen[nbr.index()] = true;
                    cone.push(nbr);
                    queue.push_back(nbr);
                }
            }
        }
        cone.sort_unstable();
        cones[ad.index()] = cone;
    }
    cones
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::FlowSpec;
    use crate::legality::legal_route;
    use adroute_topology::generate::HierarchyConfig;
    use adroute_topology::AdLevel;

    #[test]
    fn structural_workload_denies_stub_transit() {
        let topo = HierarchyConfig::default().generate();
        let db = PolicyWorkload::structural(1).generate(&topo);
        for ad in topo.ads() {
            let f = FlowSpec::best_effort(AdId(0), AdId(1));
            let verdict = db.policy(ad.id).evaluate(&f, Some(AdId(0)), Some(AdId(1)));
            match ad.role {
                AdRole::Stub | AdRole::MultiHomedStub => assert_eq!(verdict, None),
                _ => assert!(verdict.is_some()),
            }
        }
    }

    #[test]
    fn workload_is_deterministic() {
        let topo = HierarchyConfig::default().generate();
        let a = PolicyWorkload::default_mix(5).generate(&topo);
        let b = PolicyWorkload::default_mix(5).generate(&topo);
        assert_eq!(a.total_terms(), b.total_terms());
        assert_eq!(a.total_encoded_size(), b.total_encoded_size());
    }

    #[test]
    fn granularity_scales_terms() {
        let topo = HierarchyConfig::default().generate();
        let small = PolicyWorkload::granularity(1, 2).generate(&topo);
        let large = PolicyWorkload::granularity(16, 2).generate(&topo);
        assert!(large.total_terms() > small.total_terms() * 4);
    }

    #[test]
    fn customer_cones_contain_descendants() {
        let topo = HierarchyConfig::default().generate();
        let cones = customer_cones(&topo);
        for ad in topo.ads() {
            assert!(cones[ad.id.index()].contains(&ad.id));
            if ad.level == AdLevel::Backbone {
                // Backbone cone should include at least its regionals.
                assert!(cones[ad.id.index()].len() > 1);
            }
            if ad.level == AdLevel::Campus {
                assert_eq!(cones[ad.id.index()], vec![ad.id]);
            }
        }
    }

    #[test]
    fn default_mix_leaves_network_usable() {
        let topo = HierarchyConfig::default().generate();
        let db = PolicyWorkload::default_mix(9).generate(&topo);
        // Sample flows between campuses: most should still have a legal
        // route (the paper: ADs "should adopt the least restrictive
        // policies possible" — the mix is moderate).
        let campuses: Vec<AdId> = topo
            .ads()
            .filter(|a| a.level == AdLevel::Campus)
            .map(|a| a.id)
            .collect();
        let mut found = 0;
        let mut total = 0;
        for (i, &s) in campuses.iter().enumerate().take(8) {
            for &d in campuses.iter().skip(i + 1).take(8) {
                total += 1;
                if legal_route(&topo, &db, &FlowSpec::best_effort(s, d)).is_some() {
                    found += 1;
                }
            }
        }
        assert!(total > 0);
        assert!(
            found * 2 >= total,
            "only {found}/{total} flows routable under default mix"
        );
    }

    #[test]
    fn qos_terms_charge_differently() {
        let topo = HierarchyConfig::default().generate();
        let db = PolicyWorkload::default_mix(11).generate(&topo);
        // Find a transit AD with QOS terms and check evaluation differs by
        // class in at least the cost dimension being present.
        let transit = topo.ads().find(|a| a.role == AdRole::Transit).unwrap();
        let p = db.policy(transit.id);
        assert!(p.num_terms() > 0);
    }
}
