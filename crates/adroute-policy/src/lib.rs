//! Policy model for inter-AD routing, after Section 2.3 of *Design of
//! Inter-Administrative Domain Routing Protocols* (Breslau & Estrin,
//! SIGCOMM 1990) and D. Clark's *Policy Routing in Internet Protocols*
//! (RFC 1102).
//!
//! The paper distinguishes **transit policies** — what a carrier AD is
//! willing to carry — from **route selection criteria** — what a source AD
//! wants from the routes it uses. Both may depend on the source and
//! destination of traffic, the other ADs in the path, the Quality of
//! Service, the User Class Identifier, and the time of day. This crate
//! provides:
//!
//! * [`FlowSpec`] and the classification dimensions ([`QosClass`],
//!   [`UserClass`], time of day);
//! * [`PolicyTerm`]s — explicit, advertisable policy statements with
//!   conditions over (source, destination, previous AD, next AD, QOS, UCI,
//!   time) and a permit/deny action, grouped into per-AD [`TransitPolicy`];
//! * [`RouteSelection`] — the source-side criteria;
//! * [`PolicyDb`] — the global policy view that link-state architectures
//!   flood to every AD;
//! * [`legality`] — the **oracle**: exact policy-constrained route search
//!   used to score every protocol's route availability;
//! * [`workload`] — seeded random policy workloads with tunable
//!   granularity;
//! * [`ordering`] — satisfiability of a policy set by a single global
//!   partial ordering (the ECMA question of paper Section 5.1.1).

pub mod bits;
pub mod class;
pub mod db;
pub mod intern;
pub mod legality;
pub mod ordering;
pub mod terms;
pub mod text;
pub mod workload;

pub use bits::AdBits;
pub use class::{FlowSpec, QosClass, TimeOfDay, UserClass};
pub use db::PolicyDb;
pub use intern::{AdSetPool, AdSetRef};
pub use legality::{legal_route, legal_routes_sweep, route_is_legal, LegalRoute};
pub use terms::{
    AdSet, PolicyAction, PolicyCondition, PolicyTerm, PtId, RouteSelection, TransitPolicy,
};
