//! The route-legality oracle: exact policy-constrained route search.
//!
//! Paper Section 5.1 observes that hop-by-hop designs can leave a source
//! with "no available route when in fact a legal route exists (i.e., a
//! route that is permitted by the policies of all transit ADs involved)".
//! This module decides, with complete information, whether such a legal
//! route exists — and finds the least-cost one. Every protocol in the
//! workspace is scored against it.
//!
//! Because Policy Terms may condition on the **previous** and **next** AD
//! of a traversal, path legality is not a per-edge property: the search
//! runs over the product state `(current AD, previous AD)`, which is
//! exactly the state space a Route Server must explore (`adroute-core`
//! uses the same routine for synthesis).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use adroute_topology::{AdId, Topology};

use crate::class::FlowSpec;
use crate::db::PolicyDb;
use crate::terms::RouteSelection;

/// A legal route found by the oracle.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LegalRoute {
    /// The AD-level path, `src … dst`.
    pub path: Vec<AdId>,
    /// Total cost: link metrics plus transit charges from the permitting
    /// Policy Terms.
    pub cost: u64,
}

impl LegalRoute {
    /// Number of inter-AD hops.
    pub fn hops(&self) -> usize {
        self.path.len() - 1
    }
}

/// Search-effort statistics, for the synthesis experiments.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct SearchStats {
    /// `(state, edge)` relaxations attempted.
    pub relaxations: u64,
    /// States settled (popped with best cost).
    pub settled: u64,
}

/// Finds the least-cost policy-legal route for `flow`, or `None` if no
/// legal route exists.
///
/// A route is legal when every *transit* AD on it permits the traversal —
/// given the flow attributes and that AD's previous/next neighbors on the
/// path — and every link is operational. Endpoint ADs do not evaluate
/// transit policy (Section 2.3: policy routing is resource control, not
/// end-system access control).
pub fn legal_route(topo: &Topology, db: &PolicyDb, flow: &FlowSpec) -> Option<LegalRoute> {
    legal_route_with(
        topo,
        db,
        flow,
        &RouteSelection::unconstrained(),
        &mut SearchStats::default(),
    )
}

/// Full-control variant of [`legal_route`]: honors the source's
/// [`RouteSelection`] criteria and accumulates [`SearchStats`].
///
/// The avoid-set is enforced during the search (avoided ADs are never used
/// for transit); `max_cost`/`max_hops` are checked on the result.
pub fn legal_route_with(
    topo: &Topology,
    db: &PolicyDb,
    flow: &FlowSpec,
    selection: &RouteSelection,
    stats: &mut SearchStats,
) -> Option<LegalRoute> {
    if flow.src == flow.dst {
        return Some(LegalRoute {
            path: vec![flow.src],
            cost: 0,
        });
    }
    let n = topo.num_ads();
    if flow.src.index() >= n || flow.dst.index() >= n {
        return None;
    }

    // State: (current AD, previous AD). Start state uses prev = current
    // (sentinel, never consulted because the source's own policy is not
    // evaluated).
    type State = (AdId, AdId);
    let start: State = (flow.src, flow.src);
    let mut dist: HashMap<State, u64> = HashMap::new();
    let mut parent: HashMap<State, State> = HashMap::new();
    let mut heap: BinaryHeap<Reverse<(u64, AdId, AdId)>> = BinaryHeap::new();
    dist.insert(start, 0);
    heap.push(Reverse((0, flow.src, flow.src)));

    let mut best_final: Option<(u64, State)> = None;

    while let Some(Reverse((cost, cur, prev))) = heap.pop() {
        let state = (cur, prev);
        if dist.get(&state).is_none_or(|&d| cost > d) {
            continue;
        }
        stats.settled += 1;
        if cur == flow.dst {
            best_final = Some((cost, state));
            break; // first settle of dst is optimal
        }
        for (nbr, link) in topo.neighbors(cur) {
            stats.relaxations += 1;
            if nbr == prev && cur != flow.src {
                continue; // immediate backtrack is never useful
            }
            // The *current* AD (if transit) must permit forwarding from
            // `prev` to `nbr`.
            let transit_cost = if cur == flow.src {
                0
            } else {
                match db.policy(cur).evaluate(flow, Some(prev), Some(nbr)) {
                    Some(c) => u64::from(c),
                    None => continue,
                }
            };
            // Source route-selection: never transit an avoided AD.
            if nbr != flow.dst && !selection.allows_transit(nbr) {
                continue;
            }
            let ncost = cost + u64::from(topo.link(link).metric) + transit_cost;
            let nstate: State = (nbr, cur);
            if dist.get(&nstate).is_none_or(|&d| ncost < d) {
                dist.insert(nstate, ncost);
                parent.insert(nstate, state);
                heap.push(Reverse((ncost, nbr, cur)));
            }
        }
    }

    let (cost, final_state) = best_final?;
    // Reconstruct.
    let mut path = Vec::new();
    let mut cur = final_state;
    loop {
        path.push(cur.0);
        if cur == start {
            break;
        }
        cur = parent[&cur];
    }
    path.reverse();

    // The (current, previous) state graph searches *walks*; with policies
    // conditioned on the previous AD the optimal walk can, in adversarial
    // cases, revisit an AD. Inter-AD routes must be loop-free (paper
    // Section 2.1), so fall back to an exact simple-path search when that
    // happens. The walk cost is a valid lower bound for pruning.
    let has_revisit = {
        let mut seen = std::collections::HashSet::new();
        path.iter().any(|a| !seen.insert(*a))
    };
    let route = if has_revisit {
        legal_route_bruteforce(topo, db, flow)?
    } else {
        LegalRoute { path, cost }
    };

    if selection.accepts(&route.path, route.cost) {
        return Some(route);
    }
    // The least-cost route violated the source's criteria. If a hop bound
    // is the problem, retry minimizing hops instead of cost (best-effort:
    // the full bicriteria problem is out of scope for the oracle).
    if selection.max_hops.is_some() {
        if let Some(r) = legal_route_min_hops(topo, db, flow, selection) {
            if selection.accepts(&r.path, r.cost) {
                return Some(r);
            }
        }
    }
    None
}

/// Batched multi-destination variant of [`legal_route_with`]: one search
/// from `template.src` answers every destination in `dsts`, with results
/// and per-destination [`SearchStats`] **exactly equal** to calling
/// [`legal_route_with`] once per destination (flow `i` is `template` with
/// `dst = dsts[i]`, starting from fresh stats).
///
/// The wall-clock win comes from work sharing: the Dijkstra frontier from
/// `src` is computed once and read off at each destination's first
/// settle, instead of being regrown per open. Equivalence holds because,
/// when no policy conditions on the destination and no requested
/// destination sits in the avoid-set, the solo search's loop body is
/// destination-independent until the moment it breaks — so the shared
/// sweep's pop/relax sequence is a common prefix of every solo run, and
/// each solo run's effort counters can be snapshotted at its
/// destination's settle (settled *includes* the destination pop;
/// relaxations exclude its outgoing edges, which solo never visits).
/// Destinations that violate a sharing precondition — a dst-conditioned
/// Policy Term anywhere in `db`, or a destination the selection avoids
/// (which flips the `nbr != dst` transit test) — are transparently
/// answered by private per-destination searches, so the equivalence
/// contract is unconditional.
pub fn legal_routes_sweep(
    topo: &Topology,
    db: &PolicyDb,
    template: &FlowSpec,
    dsts: &[AdId],
    selection: &RouteSelection,
) -> Vec<(Option<LegalRoute>, SearchStats)> {
    let flow_for = |d: AdId| FlowSpec {
        dst: d,
        ..*template
    };
    let solo = |d: AdId| {
        let f = flow_for(d);
        let mut st = SearchStats::default();
        let r = legal_route_with(topo, db, &f, selection, &mut st);
        (r, st)
    };
    // A dst-conditioned Policy Term makes transit evaluation vary across
    // the batch: no sharing is sound.
    if db.dst_sensitive() {
        return dsts.iter().map(|&d| solo(d)).collect();
    }

    let n = topo.num_ads();
    let src = template.src;
    let mut out: Vec<Option<(Option<LegalRoute>, SearchStats)>> = vec![None; dsts.len()];
    // Destinations the shared search will answer, by index. Trivial and
    // out-of-range flows never search; avoided destinations get private
    // searches (for them `nbr != dst` admits an otherwise-avoided AD).
    let mut swept: Vec<(usize, AdId)> = Vec::new();
    for (i, &d) in dsts.iter().enumerate() {
        if d == src {
            out[i] = Some((
                Some(LegalRoute {
                    path: vec![src],
                    cost: 0,
                }),
                SearchStats::default(),
            ));
        } else if src.index() >= n || d.index() >= n {
            out[i] = Some((None, SearchStats::default()));
        } else if !selection.allows_transit(d) {
            out[i] = Some(solo(d));
        } else {
            swept.push((i, d));
        }
    }

    if !swept.is_empty() {
        // Same loop as `legal_route_with`, minus the break at the (single)
        // destination: instead, snapshot effort at each destination's
        // first settle. Policy evaluation uses an arbitrary batch flow —
        // sound because `db` is not dst-sensitive (checked above).
        type State = (AdId, AdId);
        let probe = flow_for(swept[0].1);
        let start: State = (src, src);
        let mut dist: HashMap<State, u64> = HashMap::new();
        let mut parent: HashMap<State, State> = HashMap::new();
        let mut heap: BinaryHeap<Reverse<(u64, AdId, AdId)>> = BinaryHeap::new();
        dist.insert(start, 0);
        heap.push(Reverse((0, src, src)));

        let mut stats = SearchStats::default();
        // First-settle snapshot per destination AD: final state plus the
        // effort counters a solo run would have reported at its break.
        let mut settle: HashMap<AdId, (State, SearchStats)> = HashMap::new();
        let mut remaining: usize = {
            let mut uniq: Vec<AdId> = swept.iter().map(|&(_, d)| d).collect();
            uniq.sort_unstable();
            uniq.dedup();
            uniq.len()
        };
        let wanted: std::collections::HashSet<AdId> = swept.iter().map(|&(_, d)| d).collect();

        while let Some(Reverse((cost, cur, prev))) = heap.pop() {
            let state = (cur, prev);
            if dist.get(&state).is_none_or(|&d| cost > d) {
                continue;
            }
            stats.settled += 1;
            if wanted.contains(&cur) && !settle.contains_key(&cur) {
                // Solo for `cur` breaks exactly here, after counting this
                // pop but before relaxing its edges.
                settle.insert(cur, (state, stats));
                remaining -= 1;
                if remaining == 0 {
                    break;
                }
            }
            for (nbr, link) in topo.neighbors(cur) {
                stats.relaxations += 1;
                if nbr == prev && cur != src {
                    continue;
                }
                let transit_cost = if cur == src {
                    0
                } else {
                    match db.policy(cur).evaluate(&probe, Some(prev), Some(nbr)) {
                        Some(c) => u64::from(c),
                        None => continue,
                    }
                };
                // Swept destinations are never avoided, so the solo test
                // `nbr != dst && !allows_transit(nbr)` reduces to this for
                // every flow in the batch.
                if !selection.allows_transit(nbr) {
                    continue;
                }
                let ncost = cost + u64::from(topo.link(link).metric) + transit_cost;
                let nstate: State = (nbr, cur);
                if dist.get(&nstate).is_none_or(|&d| ncost < d) {
                    dist.insert(nstate, ncost);
                    parent.insert(nstate, state);
                    heap.push(Reverse((ncost, nbr, cur)));
                }
            }
        }

        for (i, d) in swept {
            let f = flow_for(d);
            let entry = match settle.get(&d) {
                // Unsettled: solo exhausts the identical heap, reporting
                // the full-run totals.
                None => (None, stats),
                Some(&(fstate, st)) => {
                    let mut path = Vec::new();
                    let mut cur = fstate;
                    loop {
                        path.push(cur.0);
                        if cur == start {
                            break;
                        }
                        cur = parent[&cur];
                    }
                    path.reverse();
                    let cost = dist[&fstate];
                    // Identical post-processing to `legal_route_with`:
                    // revisiting walks fall back to the exact simple-path
                    // search; selection rejection retries minimizing hops
                    // when a hop bound is present. Neither touches stats.
                    let has_revisit = {
                        let mut seen = std::collections::HashSet::new();
                        path.iter().any(|a| !seen.insert(*a))
                    };
                    let route = if has_revisit {
                        legal_route_bruteforce(topo, db, &f)
                    } else {
                        Some(LegalRoute { path, cost })
                    };
                    let result = match route {
                        None => None,
                        Some(r) if selection.accepts(&r.path, r.cost) => Some(r),
                        Some(_) if selection.max_hops.is_some() => {
                            legal_route_min_hops(topo, db, &f, selection)
                                .filter(|r| selection.accepts(&r.path, r.cost))
                        }
                        Some(_) => None,
                    };
                    (result, st)
                }
            };
            out[i] = Some(entry);
        }
    }

    out.into_iter()
        .map(|o| o.expect("every dst answered"))
        .collect()
}

/// Hop-minimizing variant: BFS over the same `(current, previous)` state
/// graph, used when a source's `max_hops` criterion rejects the least-cost
/// route.
fn legal_route_min_hops(
    topo: &Topology,
    db: &PolicyDb,
    flow: &FlowSpec,
    selection: &RouteSelection,
) -> Option<LegalRoute> {
    type State = (AdId, AdId);
    let start: State = (flow.src, flow.src);
    let mut parent: HashMap<State, State> = HashMap::new();
    let mut visited: std::collections::HashSet<State> = std::collections::HashSet::new();
    let mut queue = std::collections::VecDeque::new();
    visited.insert(start);
    queue.push_back(start);
    while let Some((cur, prev)) = queue.pop_front() {
        if cur == flow.dst {
            let mut path = Vec::new();
            let mut s = (cur, prev);
            loop {
                path.push(s.0);
                if s == start {
                    break;
                }
                s = parent[&s];
            }
            path.reverse();
            let cost = route_is_legal(topo, db, flow, &path)?;
            return Some(LegalRoute { path, cost });
        }
        for (nbr, _) in topo.neighbors(cur) {
            if nbr == prev && cur != flow.src {
                continue;
            }
            if cur != flow.src
                && db
                    .policy(cur)
                    .evaluate(flow, Some(prev), Some(nbr))
                    .is_none()
            {
                continue;
            }
            if nbr != flow.dst && !selection.allows_transit(nbr) {
                continue;
            }
            let nstate = (nbr, cur);
            if visited.insert(nstate) {
                parent.insert(nstate, (cur, prev));
                queue.push_back(nstate);
            }
        }
    }
    None
}

/// Checks a complete candidate route for legality, returning the total
/// cost if legal. This is what a chain of Policy Gateways does during
/// route setup, and what the forwarding harness uses to audit protocols.
pub fn route_is_legal(
    topo: &Topology,
    db: &PolicyDb,
    flow: &FlowSpec,
    path: &[AdId],
) -> Option<u64> {
    if path.len() == 1 {
        return (path[0] == flow.src && flow.src == flow.dst).then_some(0);
    }
    if path.first() != Some(&flow.src) || path.last() != Some(&flow.dst) {
        return None;
    }
    if !topo.is_simple_path(path) {
        return None;
    }
    let mut cost = 0u64;
    for w in path.windows(2) {
        let link = topo.link_between(w[0], w[1])?;
        cost += u64::from(topo.link(link).metric);
    }
    for i in 1..path.len() - 1 {
        let c = db
            .policy(path[i])
            .evaluate(flow, Some(path[i - 1]), Some(path[i + 1]))?;
        cost += u64::from(c);
    }
    Some(cost)
}

/// Exhaustive reference implementation: enumerates **all simple paths**
/// and returns the least-cost legal one. Exponential; only for testing the
/// oracle on small graphs.
pub fn legal_route_bruteforce(
    topo: &Topology,
    db: &PolicyDb,
    flow: &FlowSpec,
) -> Option<LegalRoute> {
    fn rec(
        topo: &Topology,
        db: &PolicyDb,
        flow: &FlowSpec,
        path: &mut Vec<AdId>,
        on_path: &mut Vec<bool>,
        best: &mut Option<LegalRoute>,
    ) {
        let cur = *path.last().unwrap();
        if cur == flow.dst {
            if let Some(cost) = route_is_legal(topo, db, flow, path) {
                if best.as_ref().is_none_or(|b| cost < b.cost) {
                    *best = Some(LegalRoute {
                        path: path.clone(),
                        cost,
                    });
                }
            }
            return;
        }
        for (nbr, _) in topo.neighbors(cur) {
            if !on_path[nbr.index()] {
                on_path[nbr.index()] = true;
                path.push(nbr);
                rec(topo, db, flow, path, on_path, best);
                path.pop();
                on_path[nbr.index()] = false;
            }
        }
    }
    if flow.src == flow.dst {
        return Some(LegalRoute {
            path: vec![flow.src],
            cost: 0,
        });
    }
    let mut best = None;
    let mut on_path = vec![false; topo.num_ads()];
    on_path[flow.src.index()] = true;
    rec(topo, db, flow, &mut vec![flow.src], &mut on_path, &mut best);
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::terms::{AdSet, PolicyAction, PolicyCondition, TransitPolicy};
    use adroute_topology::generate::{line, ring};

    #[test]
    fn permissive_oracle_matches_shortest_path() {
        let t = ring(6);
        let db = PolicyDb::permissive(&t);
        let f = FlowSpec::best_effort(AdId(0), AdId(3));
        let r = legal_route(&t, &db, &f).unwrap();
        assert_eq!(r.cost, 3);
        assert_eq!(r.hops(), 3);
    }

    #[test]
    fn deny_all_transit_blocks_route() {
        let t = line(3);
        let mut db = PolicyDb::permissive(&t);
        db.set_policy(TransitPolicy::deny_all(AdId(1)));
        let f = FlowSpec::best_effort(AdId(0), AdId(2));
        assert!(legal_route(&t, &db, &f).is_none());
        // But the middle AD can still originate/terminate.
        let f2 = FlowSpec::best_effort(AdId(0), AdId(1));
        assert!(legal_route(&t, &db, &f2).is_some());
    }

    #[test]
    fn oracle_routes_around_denials() {
        let t = ring(6); // two paths 0->3: via 1,2 and via 5,4
        let mut db = PolicyDb::permissive(&t);
        db.set_policy(TransitPolicy::deny_all(AdId(1)));
        let f = FlowSpec::best_effort(AdId(0), AdId(3));
        let r = legal_route(&t, &db, &f).unwrap();
        assert_eq!(r.path, vec![AdId(0), AdId(5), AdId(4), AdId(3)]);
    }

    #[test]
    fn transit_charges_affect_choice() {
        let t = ring(4); // 0->2 via 1 or via 3
        let mut db = PolicyDb::permissive(&t);
        db.policy_mut(AdId(1)).default = PolicyAction::Permit { cost: 10 };
        let f = FlowSpec::best_effort(AdId(0), AdId(2));
        let r = legal_route(&t, &db, &f).unwrap();
        assert_eq!(r.path, vec![AdId(0), AdId(3), AdId(2)]);
        assert_eq!(r.cost, 2);
    }

    #[test]
    fn prev_next_conditions_enforced() {
        // 0 - 1 - 2 and 0 - 3 - 1: AD1 refuses packets arriving from AD0
        // directly but accepts them via AD3.
        let t = ring(4); // edges 0-1, 1-2, 2-3, 0-3
        let mut db = PolicyDb::permissive(&t);
        let mut p1 = TransitPolicy::permit_all(AdId(1));
        p1.push_term(
            vec![PolicyCondition::PrevIn(AdSet::only([AdId(0)]))],
            PolicyAction::Deny,
        );
        db.set_policy(p1);
        let f = FlowSpec::best_effort(AdId(0), AdId(2));
        let r = legal_route(&t, &db, &f).unwrap();
        // Direct 0-1-2 is illegal (prev=0 at AD1); 0-3-2 works.
        assert_eq!(r.path, vec![AdId(0), AdId(3), AdId(2)]);
    }

    #[test]
    fn route_is_legal_checks_everything() {
        let t = line(4);
        let mut db = PolicyDb::permissive(&t);
        db.policy_mut(AdId(1)).default = PolicyAction::Permit { cost: 5 };
        let f = FlowSpec::best_effort(AdId(0), AdId(3));
        let p = [AdId(0), AdId(1), AdId(2), AdId(3)];
        assert_eq!(route_is_legal(&t, &db, &f, &p), Some(3 + 5));
        // wrong endpoints
        assert_eq!(
            route_is_legal(&t, &db, &f, &[AdId(1), AdId(2), AdId(3)]),
            None
        );
        // non-adjacent
        assert_eq!(
            route_is_legal(&t, &db, &f, &[AdId(0), AdId(2), AdId(3)]),
            None
        );
        // denial on path
        db.set_policy(TransitPolicy::deny_all(AdId(2)));
        assert_eq!(route_is_legal(&t, &db, &f, &p), None);
    }

    #[test]
    fn route_selection_avoidance() {
        let t = ring(6);
        let db = PolicyDb::permissive(&t);
        let f = FlowSpec::best_effort(AdId(0), AdId(3));
        let sel = RouteSelection::avoiding([AdId(1), AdId(2)]);
        let mut stats = SearchStats::default();
        let r = legal_route_with(&t, &db, &f, &sel, &mut stats).unwrap();
        assert_eq!(r.path, vec![AdId(0), AdId(5), AdId(4), AdId(3)]);
        assert!(stats.settled > 0 && stats.relaxations > 0);
    }

    #[test]
    fn route_selection_max_cost_rejects() {
        let t = line(5);
        let db = PolicyDb::permissive(&t);
        let f = FlowSpec::best_effort(AdId(0), AdId(4));
        let sel = RouteSelection {
            max_cost: Some(3),
            ..RouteSelection::unconstrained()
        };
        let mut stats = SearchStats::default();
        assert!(legal_route_with(&t, &db, &f, &sel, &mut stats).is_none());
    }

    #[test]
    fn oracle_agrees_with_bruteforce_on_random_policies() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(42);
        for trial in 0..30 {
            let t = if trial % 2 == 0 {
                ring(6)
            } else {
                adroute_topology::generate::grid(2, 3)
            };
            let mut db = PolicyDb::permissive(&t);
            for ad in t.ad_ids() {
                if rng.gen_bool(0.4) {
                    let p = db.policy_mut(ad);
                    let denied: Vec<AdId> = t.ad_ids().filter(|_| rng.gen_bool(0.3)).collect();
                    p.push_term(
                        vec![PolicyCondition::SrcIn(AdSet::only(denied))],
                        PolicyAction::Deny,
                    );
                }
                if rng.gen_bool(0.3) {
                    db.policy_mut(ad).default = PolicyAction::Permit {
                        cost: rng.gen_range(0..5),
                    };
                }
            }
            let src = AdId(rng.gen_range(0..t.num_ads() as u32));
            let dst = AdId(rng.gen_range(0..t.num_ads() as u32));
            let f = FlowSpec::best_effort(src, dst);
            let fast = legal_route(&t, &db, &f);
            let slow = legal_route_bruteforce(&t, &db, &f);
            match (&fast, &slow) {
                (Some(a), Some(b)) => assert_eq!(a.cost, b.cost, "trial {trial}: {f}"),
                (None, None) => {}
                _ => panic!("trial {trial}: oracle {fast:?} vs brute {slow:?} for {f}"),
            }
            if let Some(r) = fast {
                assert_eq!(route_is_legal(&t, &db, &f, &r.path), Some(r.cost));
            }
        }
    }

    #[test]
    fn trivial_flow() {
        let t = line(2);
        let db = PolicyDb::permissive(&t);
        let f = FlowSpec::best_effort(AdId(0), AdId(0));
        let r = legal_route(&t, &db, &f).unwrap();
        assert_eq!(r.path, vec![AdId(0)]);
        assert_eq!(r.cost, 0);
        assert_eq!(route_is_legal(&t, &db, &f, &[AdId(0)]), Some(0));
    }

    /// The sweep's contract is exact equivalence with one solo search per
    /// destination — routes AND effort counters.
    fn assert_sweep_matches_solo(
        t: &Topology,
        db: &PolicyDb,
        template: &FlowSpec,
        dsts: &[AdId],
        sel: &RouteSelection,
        what: &str,
    ) {
        let swept = legal_routes_sweep(t, db, template, dsts, sel);
        assert_eq!(swept.len(), dsts.len());
        for (i, &d) in dsts.iter().enumerate() {
            let f = FlowSpec {
                dst: d,
                ..*template
            };
            let mut st = SearchStats::default();
            let solo = legal_route_with(t, db, &f, sel, &mut st);
            assert_eq!(swept[i].0, solo, "{what}: route for dst {d} diverged");
            assert_eq!(swept[i].1, st, "{what}: stats for dst {d} diverged");
        }
    }

    use adroute_topology::Topology;

    #[test]
    fn sweep_matches_solo_on_ring() {
        let t = ring(8);
        let mut db = PolicyDb::permissive(&t);
        db.set_policy(TransitPolicy::deny_all(AdId(2)));
        db.policy_mut(AdId(5)).default = PolicyAction::Permit { cost: 3 };
        let template = FlowSpec::best_effort(AdId(0), AdId(0));
        let dsts: Vec<AdId> = t.ad_ids().collect();
        assert_sweep_matches_solo(
            &t,
            &db,
            &template,
            &dsts,
            &RouteSelection::unconstrained(),
            "ring",
        );
    }

    #[test]
    fn sweep_matches_solo_with_avoided_and_trivial_dsts() {
        let t = ring(8);
        let db = PolicyDb::permissive(&t);
        let template = FlowSpec::best_effort(AdId(0), AdId(0));
        // Avoid 3: dst 3 takes the private-search path; dst 0 is trivial;
        // dst 99 is out of range; duplicates must each be answered.
        let sel = RouteSelection::avoiding([AdId(3)]);
        let dsts = [AdId(4), AdId(3), AdId(0), AdId(99), AdId(4), AdId(6)];
        assert_sweep_matches_solo(&t, &db, &template, &dsts, &sel, "avoid");
    }

    #[test]
    fn sweep_falls_back_on_dst_sensitive_policies() {
        let t = ring(6);
        let mut db = PolicyDb::permissive(&t);
        let mut p = TransitPolicy::permit_all(AdId(1));
        p.push_term(
            vec![PolicyCondition::DstIn(AdSet::only([AdId(3)]))],
            PolicyAction::Deny,
        );
        db.set_policy(p);
        assert!(db.dst_sensitive());
        let template = FlowSpec::best_effort(AdId(0), AdId(0));
        let dsts: Vec<AdId> = t.ad_ids().collect();
        assert_sweep_matches_solo(
            &t,
            &db,
            &template,
            &dsts,
            &RouteSelection::unconstrained(),
            "dst-sensitive",
        );
    }

    #[test]
    fn sweep_matches_solo_on_random_policies() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(1990);
        for trial in 0..40 {
            let t = match trial % 3 {
                0 => ring(7),
                1 => adroute_topology::generate::grid(3, 3),
                _ => adroute_topology::generate::grid(2, 4),
            };
            let mut db = PolicyDb::permissive(&t);
            for ad in t.ad_ids() {
                if rng.gen_bool(0.35) {
                    let denied: Vec<AdId> = t.ad_ids().filter(|_| rng.gen_bool(0.3)).collect();
                    db.policy_mut(ad).push_term(
                        vec![PolicyCondition::PrevIn(AdSet::only(denied))],
                        PolicyAction::Deny,
                    );
                }
                if rng.gen_bool(0.3) {
                    db.policy_mut(ad).default = PolicyAction::Permit {
                        cost: rng.gen_range(0..5),
                    };
                }
                if rng.gen_bool(0.15) {
                    // Exercise the dst-sensitivity fallback in some trials.
                    let picked: Vec<AdId> = t.ad_ids().filter(|_| rng.gen_bool(0.2)).collect();
                    db.policy_mut(ad).push_term(
                        vec![PolicyCondition::DstIn(AdSet::only(picked))],
                        PolicyAction::Deny,
                    );
                }
            }
            let src = AdId(rng.gen_range(0..t.num_ads() as u32));
            let template = FlowSpec::best_effort(src, src);
            let sel = if rng.gen_bool(0.4) {
                let avoided: Vec<AdId> = t.ad_ids().filter(|_| rng.gen_bool(0.2)).collect();
                RouteSelection {
                    max_hops: rng.gen_bool(0.3).then(|| rng.gen_range(1..5)),
                    ..RouteSelection::avoiding(avoided)
                }
            } else {
                RouteSelection::unconstrained()
            };
            let dsts: Vec<AdId> = t.ad_ids().collect();
            assert_sweep_matches_solo(&t, &db, &template, &dsts, &sel, &format!("trial {trial}"));
        }
    }
}
