//! A human-readable text form for transit policies.
//!
//! Administrators, not protocols, write policies (paper Section 6: "it
//! will be the job of local administrators to specify policies for their
//! ADs"). This module gives [`TransitPolicy`] a stable, round-trippable
//! text syntax used by examples, golden tests, and anyone inspecting a
//! workload:
//!
//! ```text
//! policy AD5 {
//!     deny src {AD1, AD2};
//!     permit qos {1, 2} cost 3;
//!     permit src {AD3} dst !{AD9} prev {AD0} time 19:00-07:00 cost 2;
//!     default permit 0;
//! }
//! ```
//!
//! Semantics match the in-memory model exactly: terms are ordered,
//! first match wins, conditions within a term are conjunctive, `!{…}`
//! is set complement, and `default` gives the action when nothing
//! matches.

use std::fmt;
use std::str::FromStr;

use adroute_topology::AdId;

use crate::class::{QosClass, TimeOfDay, UserClass};
use crate::terms::{AdSet, PolicyAction, PolicyCondition, PolicyTerm, TransitPolicy};

/// Formats a policy in the canonical text syntax.
pub fn format_policy(p: &TransitPolicy) -> String {
    let mut out = format!("policy {} {{\n", p.ad);
    for term in &p.terms {
        out.push_str("    ");
        out.push_str(&format_term(term));
        out.push_str(";\n");
    }
    out.push_str("    default ");
    out.push_str(&format_action(&p.default));
    out.push_str(";\n}\n");
    out
}

fn format_action(a: &PolicyAction) -> String {
    match a {
        PolicyAction::Permit { cost } => format!("permit {cost}"),
        PolicyAction::Deny => "deny".to_string(),
    }
}

fn format_term(t: &PolicyTerm) -> String {
    let mut s = match t.action {
        PolicyAction::Permit { .. } => "permit".to_string(),
        PolicyAction::Deny => "deny".to_string(),
    };
    for c in &t.conditions {
        s.push(' ');
        match c {
            PolicyCondition::SrcIn(set) => s.push_str(&format!("src {set}")),
            PolicyCondition::DstIn(set) => s.push_str(&format!("dst {set}")),
            PolicyCondition::PrevIn(set) => s.push_str(&format!("prev {set}")),
            PolicyCondition::NextIn(set) => s.push_str(&format!("next {set}")),
            PolicyCondition::QosIn(qs) => {
                let list: Vec<String> = qs.iter().map(|q| q.0.to_string()).collect();
                s.push_str(&format!("qos {{{}}}", list.join(", ")));
            }
            PolicyCondition::UciIn(us) => {
                let list: Vec<String> = us.iter().map(|u| u.0.to_string()).collect();
                s.push_str(&format!("uci {{{}}}", list.join(", ")));
            }
            PolicyCondition::TimeWindow(a, b) => s.push_str(&format!("time {a}-{b}")),
        }
    }
    if let PolicyAction::Permit { cost } = t.action {
        s.push_str(&format!(" cost {cost}"));
    }
    s
}

/// An error produced while parsing policy text.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// What went wrong, with enough context to find it.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "policy parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        message: message.into(),
    })
}

/// A tiny hand-rolled tokenizer: words, numbers, and punctuation.
struct Lexer<'a> {
    rest: &'a str,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Tok<'a> {
    Word(&'a str),
    Punct(char),
}

impl<'a> Lexer<'a> {
    fn new(s: &'a str) -> Lexer<'a> {
        Lexer { rest: s }
    }

    fn next(&mut self) -> Option<Tok<'a>> {
        self.rest = self.rest.trim_start();
        let mut chars = self.rest.char_indices();
        let (_, first) = chars.next()?;
        if first.is_alphanumeric() || first == ':' {
            let end = self
                .rest
                .char_indices()
                .find(|&(_, c)| !(c.is_alphanumeric() || c == ':'))
                .map(|(i, _)| i)
                .unwrap_or(self.rest.len());
            let (word, rest) = self.rest.split_at(end);
            self.rest = rest;
            Some(Tok::Word(word))
        } else {
            self.rest = &self.rest[first.len_utf8()..];
            Some(Tok::Punct(first))
        }
    }

    fn expect_word(&mut self, want: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(Tok::Word(w)) if w == want => Ok(()),
            other => err(format!("expected '{want}', found {other:?}")),
        }
    }

    fn expect_punct(&mut self, want: char) -> Result<(), ParseError> {
        match self.next() {
            Some(Tok::Punct(p)) if p == want => Ok(()),
            other => err(format!("expected '{want}', found {other:?}")),
        }
    }

    fn peek(&self) -> Option<Tok<'a>> {
        Lexer { rest: self.rest }.next()
    }
}

fn parse_ad(word: &str) -> Result<AdId, ParseError> {
    let digits = word.strip_prefix("AD").unwrap_or(word);
    match digits.parse::<u32>() {
        Ok(n) => Ok(AdId(n)),
        Err(_) => err(format!("expected an AD id, found '{word}'")),
    }
}

fn parse_number(lx: &mut Lexer<'_>) -> Result<u32, ParseError> {
    match lx.next() {
        Some(Tok::Word(w)) => w.parse::<u32>().map_err(|_| ParseError {
            message: format!("expected number, found '{w}'"),
        }),
        other => err(format!("expected number, found {other:?}")),
    }
}

/// Parses `{AD1, AD2}` or `!{…}` or `*`.
fn parse_adset(lx: &mut Lexer<'_>) -> Result<AdSet, ParseError> {
    match lx.next() {
        Some(Tok::Punct('*')) => Ok(AdSet::Any),
        Some(Tok::Punct('!')) => {
            let AdSet::Only(v) = parse_adset_braces(lx)? else {
                return err("expected '{' after '!'");
            };
            Ok(AdSet::Except(v))
        }
        Some(Tok::Punct('{')) => parse_adset_rest(lx),
        other => err(format!("expected AD set, found {other:?}")),
    }
}

fn parse_adset_braces(lx: &mut Lexer<'_>) -> Result<AdSet, ParseError> {
    lx.expect_punct('{')?;
    parse_adset_rest(lx)
}

fn parse_adset_rest(lx: &mut Lexer<'_>) -> Result<AdSet, ParseError> {
    let mut ads = Vec::new();
    loop {
        match lx.next() {
            Some(Tok::Punct('}')) => break,
            Some(Tok::Punct(',')) => continue,
            Some(Tok::Word(w)) => ads.push(parse_ad(w)?),
            other => return err(format!("in AD set: unexpected {other:?}")),
        }
    }
    Ok(AdSet::only(ads))
}

/// Parses `{1, 2}` as a list of small class numbers.
fn parse_class_list(lx: &mut Lexer<'_>) -> Result<Vec<u8>, ParseError> {
    lx.expect_punct('{')?;
    let mut out = Vec::new();
    loop {
        match lx.next() {
            Some(Tok::Punct('}')) => break,
            Some(Tok::Punct(',')) => continue,
            Some(Tok::Word(w)) => match w.parse::<u8>() {
                Ok(n) => out.push(n),
                Err(_) => return err(format!("expected class number, found '{w}'")),
            },
            other => return err(format!("in class list: unexpected {other:?}")),
        }
    }
    Ok(out)
}

/// Parses `HH:MM-HH:MM`.
fn parse_time_window(lx: &mut Lexer<'_>) -> Result<(TimeOfDay, TimeOfDay), ParseError> {
    let parse_hm = |w: &str| -> Result<TimeOfDay, ParseError> {
        let (h, m) = w.split_once(':').ok_or(ParseError {
            message: format!("expected HH:MM, found '{w}'"),
        })?;
        let (h, m) = (
            h.parse::<u16>().map_err(|_| ParseError {
                message: format!("bad hour '{h}'"),
            })?,
            m.parse::<u16>().map_err(|_| ParseError {
                message: format!("bad minute '{m}'"),
            })?,
        );
        if h >= 24 || m >= 60 {
            return err(format!("time out of range: {h}:{m}"));
        }
        Ok(TimeOfDay::hm(h, m))
    };
    match lx.next() {
        Some(Tok::Word(w)) => {
            let start = parse_hm(w)?;
            lx.expect_punct('-')?;
            match lx.next() {
                Some(Tok::Word(w2)) => Ok((start, parse_hm(w2)?)),
                other => err(format!("expected end time, found {other:?}")),
            }
        }
        other => err(format!("expected time window, found {other:?}")),
    }
}

/// Parses the canonical text syntax back into a [`TransitPolicy`].
pub fn parse_policy(input: &str) -> Result<TransitPolicy, ParseError> {
    let mut lx = Lexer::new(input);
    lx.expect_word("policy")?;
    let ad = match lx.next() {
        Some(Tok::Word(w)) => parse_ad(w)?,
        other => return err(format!("expected AD id, found {other:?}")),
    };
    lx.expect_punct('{')?;
    let mut policy = TransitPolicy {
        ad,
        terms: Vec::new(),
        default: PolicyAction::Deny,
    };
    let mut saw_default = false;
    loop {
        match lx.next() {
            Some(Tok::Punct('}')) => break,
            Some(Tok::Word("default")) => {
                let action = match lx.next() {
                    Some(Tok::Word("permit")) => {
                        let cost = parse_number(&mut lx)?;
                        PolicyAction::Permit { cost }
                    }
                    Some(Tok::Word("deny")) => PolicyAction::Deny,
                    other => return err(format!("expected permit/deny, found {other:?}")),
                };
                lx.expect_punct(';')?;
                policy.default = action;
                saw_default = true;
            }
            Some(Tok::Word(kw @ ("permit" | "deny"))) => {
                let mut conditions = Vec::new();
                let mut cost = None;
                loop {
                    match lx.peek() {
                        Some(Tok::Punct(';')) => {
                            let _ = lx.next();
                            break;
                        }
                        Some(Tok::Word("src")) => {
                            let _ = lx.next();
                            conditions.push(PolicyCondition::SrcIn(parse_adset(&mut lx)?));
                        }
                        Some(Tok::Word("dst")) => {
                            let _ = lx.next();
                            conditions.push(PolicyCondition::DstIn(parse_adset(&mut lx)?));
                        }
                        Some(Tok::Word("prev")) => {
                            let _ = lx.next();
                            conditions.push(PolicyCondition::PrevIn(parse_adset(&mut lx)?));
                        }
                        Some(Tok::Word("next")) => {
                            let _ = lx.next();
                            conditions.push(PolicyCondition::NextIn(parse_adset(&mut lx)?));
                        }
                        Some(Tok::Word("qos")) => {
                            let _ = lx.next();
                            let list = parse_class_list(&mut lx)?;
                            conditions.push(PolicyCondition::QosIn(
                                list.into_iter().map(QosClass).collect(),
                            ));
                        }
                        Some(Tok::Word("uci")) => {
                            let _ = lx.next();
                            let list = parse_class_list(&mut lx)?;
                            conditions.push(PolicyCondition::UciIn(
                                list.into_iter().map(UserClass).collect(),
                            ));
                        }
                        Some(Tok::Word("time")) => {
                            let _ = lx.next();
                            let (a, b) = parse_time_window(&mut lx)?;
                            conditions.push(PolicyCondition::TimeWindow(a, b));
                        }
                        Some(Tok::Word("cost")) => {
                            let _ = lx.next();
                            cost = Some(parse_number(&mut lx)?);
                        }
                        other => return err(format!("in term: unexpected {other:?}")),
                    }
                }
                let action = if kw == "permit" {
                    PolicyAction::Permit {
                        cost: cost.unwrap_or(0),
                    }
                } else {
                    if cost.is_some() {
                        return err("deny terms cannot carry a cost");
                    }
                    PolicyAction::Deny
                };
                policy.push_term(conditions, action);
            }
            other => return err(format!("expected a term or '}}', found {other:?}")),
        }
    }
    if !saw_default {
        return err("missing 'default' clause");
    }
    Ok(policy)
}

/// Formats a whole database, one `policy` block per AD.
pub fn format_policies(db: &crate::db::PolicyDb) -> String {
    let mut out = String::new();
    for p in db.iter() {
        out.push_str(&format_policy(p));
        out.push('\n');
    }
    out
}

/// Parses a concatenation of `policy` blocks into a [`crate::db::PolicyDb`] covering
/// ADs `0..num_ads`. ADs without a block get a permit-all policy (the
/// paper's "least restrictive policies possible" default).
pub fn parse_policies(input: &str, num_ads: usize) -> Result<crate::db::PolicyDb, ParseError> {
    let mut policies: Vec<TransitPolicy> = (0..num_ads as u32)
        .map(|i| TransitPolicy::permit_all(AdId(i)))
        .collect();
    // Split on 'policy' keyword occurrences at line starts.
    let mut starts: Vec<usize> = Vec::new();
    for (off, _) in input.match_indices("policy") {
        let at_line_start = off == 0
            || input[..off].trim_end_matches([' ', '\t']).ends_with('\n')
            || input[..off].trim().is_empty();
        if at_line_start {
            starts.push(off);
        }
    }
    for (i, &s) in starts.iter().enumerate() {
        let end = starts.get(i + 1).copied().unwrap_or(input.len());
        let block = &input[s..end];
        let p = parse_policy(block)?;
        let idx = p.ad.index();
        if idx >= num_ads {
            return err(format!(
                "policy for {} outside the {num_ads}-AD topology",
                p.ad
            ));
        }
        policies[idx] = p;
    }
    Ok(crate::db::PolicyDb::from_policies(policies))
}

impl fmt::Display for TransitPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&format_policy(self))
    }
}

impl FromStr for TransitPolicy {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        parse_policy(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::FlowSpec;

    #[test]
    fn formats_canonical_syntax() {
        let mut p = TransitPolicy::permit_all(AdId(5));
        p.push_term(
            vec![PolicyCondition::SrcIn(AdSet::only([AdId(1), AdId(2)]))],
            PolicyAction::Deny,
        );
        p.push_term(
            vec![PolicyCondition::QosIn(vec![QosClass(1), QosClass(2)])],
            PolicyAction::Permit { cost: 3 },
        );
        let text = format_policy(&p);
        assert!(text.contains("policy AD5 {"), "{text}");
        assert!(text.contains("deny src {AD1,AD2};"), "{text}");
        assert!(text.contains("permit qos {1, 2} cost 3;"), "{text}");
        assert!(text.contains("default permit 0;"), "{text}");
    }

    #[test]
    fn parses_what_it_formats() {
        let mut p = TransitPolicy::deny_all(AdId(7));
        p.push_term(
            vec![
                PolicyCondition::SrcIn(AdSet::only([AdId(3)])),
                PolicyCondition::DstIn(AdSet::except([AdId(9)])),
                PolicyCondition::PrevIn(AdSet::Any),
                PolicyCondition::NextIn(AdSet::only([AdId(1), AdId(4)])),
                PolicyCondition::QosIn(vec![QosClass(2)]),
                PolicyCondition::UciIn(vec![UserClass(1), UserClass(3)]),
                PolicyCondition::TimeWindow(TimeOfDay::hm(19, 0), TimeOfDay::hm(7, 0)),
            ],
            PolicyAction::Permit { cost: 12 },
        );
        p.push_term(vec![], PolicyAction::Deny);
        let text = format_policy(&p);
        let back = parse_policy(&text).unwrap_or_else(|e| panic!("{e}:\n{text}"));
        assert_eq!(back.ad, p.ad);
        assert_eq!(back.terms, p.terms);
        assert_eq!(
            matches!(back.default, PolicyAction::Deny),
            matches!(p.default, PolicyAction::Deny)
        );
    }

    #[test]
    fn parses_hand_written_policy() {
        let text = "
            policy AD5 {
                deny src {AD1, AD2};
                permit qos {1} cost 3;
                permit src * dst {AD4} cost 0;
                default deny;
            }";
        let p: TransitPolicy = text.parse().unwrap();
        assert_eq!(p.ad, AdId(5));
        assert_eq!(p.num_terms(), 3);
        // Behaviour check: src AD1 denied, qos1 permitted for others.
        let f = FlowSpec::best_effort(AdId(1), AdId(9));
        assert_eq!(p.evaluate(&f, Some(AdId(0)), Some(AdId(3))), None);
        let f2 = FlowSpec::best_effort(AdId(3), AdId(9)).with_qos(QosClass(1));
        assert_eq!(p.evaluate(&f2, Some(AdId(0)), Some(AdId(3))), Some(3));
        let f3 = FlowSpec::best_effort(AdId(3), AdId(4));
        assert_eq!(p.evaluate(&f3, Some(AdId(0)), Some(AdId(3))), Some(0));
        let f4 = FlowSpec::best_effort(AdId(3), AdId(9));
        assert_eq!(p.evaluate(&f4, Some(AdId(0)), Some(AdId(3))), None);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_policy("policy AD5 {").is_err());
        assert!(parse_policy("policy {} {}").is_err());
        assert!(parse_policy("policy AD5 { default permit 0; } trailing").is_ok()); // trailing ignored
        assert!(parse_policy("policy AD5 { }").is_err(), "default required");
        assert!(parse_policy("policy AD5 { deny cost 3; default deny; }").is_err());
        assert!(
            parse_policy("policy AD5 { permit time 25:00-07:00 cost 0; default deny; }").is_err()
        );
        assert!(parse_policy("policy AD5 { frobnicate; default deny; }").is_err());
    }

    #[test]
    fn error_messages_are_descriptive() {
        let e = parse_policy("policy AD5 { bogus; default deny; }").unwrap_err();
        assert!(e.to_string().contains("bogus"), "{e}");
    }

    #[test]
    fn whole_database_round_trips() {
        use crate::workload::PolicyWorkload;
        use adroute_topology::generate::HierarchyConfig;
        let topo = HierarchyConfig::figure1().generate();
        let db = PolicyWorkload::default_mix(5).generate(&topo);
        let text = format_policies(&db);
        let back = parse_policies(&text, topo.num_ads()).unwrap();
        assert_eq!(back.total_terms(), db.total_terms());
        for (a, b) in db.iter().zip(back.iter()) {
            assert_eq!(a.terms, b.terms, "policy of {} diverged", a.ad);
        }
    }

    #[test]
    fn sparse_database_defaults_to_permit_all() {
        let text = "policy AD2 { default deny; }";
        let db = parse_policies(text, 4).unwrap();
        let f = FlowSpec::best_effort(AdId(0), AdId(3));
        assert_eq!(
            db.policy(AdId(1))
                .evaluate(&f, Some(AdId(0)), Some(AdId(2))),
            Some(0)
        );
        assert_eq!(
            db.policy(AdId(2))
                .evaluate(&f, Some(AdId(0)), Some(AdId(3))),
            None
        );
        // Out-of-range policy rejected.
        assert!(parse_policies("policy AD9 { default deny; }", 4).is_err());
    }

    proptest::proptest! {
        /// Round trip: any generated workload policy survives
        /// format -> parse -> format unchanged.
        #[test]
        fn roundtrip_workload_policies(seed in 0u64..300, g in 0u8..8) {
            use adroute_topology::generate::HierarchyConfig;
            use crate::workload::PolicyWorkload;
            let topo = HierarchyConfig::figure1().generate();
            let db = PolicyWorkload::granularity(g, seed).generate(&topo);
            for p in db.iter().take(10) {
                let text = format_policy(p);
                let back = parse_policy(&text)
                    .unwrap_or_else(|e| panic!("{e}\n{text}"));
                proptest::prop_assert_eq!(format_policy(&back), text);
                proptest::prop_assert_eq!(&back.terms, &p.terms);
            }
        }
    }
}
