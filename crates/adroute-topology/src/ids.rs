//! Identifier and classification types for Administrative Domains and links.

use std::fmt;

/// Identifier of an Administrative Domain (AD).
///
/// ADs are numbered densely from zero within a [`crate::Topology`], so an
/// `AdId` doubles as an index into per-AD vectors.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct AdId(pub u32);

impl AdId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AdId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AD{}", self.0)
    }
}

impl From<u32> for AdId {
    fn from(v: u32) -> Self {
        AdId(v)
    }
}

/// Identifier of an inter-AD link.
///
/// Links are numbered densely from zero within a [`crate::Topology`]. A link
/// is an undirected adjacency between two ADs; protocols may treat the two
/// directions separately.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LinkId(pub u32);

impl LinkId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Position of an AD in the hierarchy of paper Figure 1.
///
/// The paper's model internet consists of "long haul backbone, regional,
/// metropolitan, and campus networks" (Section 2.1). Level ordering is
/// `Backbone > Regional > Metro > Campus`; the ECMA partial order
/// ([`crate::order::PartialOrder`]) ranks ADs level-major.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum AdLevel {
    /// Campus / organization network — the leaves of the hierarchy.
    Campus,
    /// Metropolitan-area network.
    Metro,
    /// Regional network.
    Regional,
    /// Long-haul backbone network.
    Backbone,
}

impl AdLevel {
    /// Numeric rank: `Campus = 0` … `Backbone = 3`. Higher is closer to the
    /// top of the hierarchy.
    #[inline]
    pub fn rank(self) -> u8 {
        match self {
            AdLevel::Campus => 0,
            AdLevel::Metro => 1,
            AdLevel::Regional => 2,
            AdLevel::Backbone => 3,
        }
    }

    /// All levels from leaf to root.
    pub const ALL: [AdLevel; 4] = [
        AdLevel::Campus,
        AdLevel::Metro,
        AdLevel::Regional,
        AdLevel::Backbone,
    ];
}

impl fmt::Display for AdLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AdLevel::Campus => "campus",
            AdLevel::Metro => "metro",
            AdLevel::Regional => "regional",
            AdLevel::Backbone => "backbone",
        };
        f.write_str(s)
    }
}

/// Transit behaviour of an AD, per the taxonomy of paper Section 2.1.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AdRole {
    /// A *stub* AD is "not used for transit by anyone outside of the AD";
    /// it has exactly one inter-AD connection.
    Stub,
    /// A *multi-homed* stub has more than one inter-AD connection "but
    /// wish\[es\] to disallow any transit traffic".
    MultiHomedStub,
    /// A *transit* AD's "primary function is to provide transit services
    /// for many other ADs" — backbones and regionals.
    Transit,
    /// A *hybrid* (limited-transit) AD supports access to end systems as
    /// well as limited forms of transit.
    Hybrid,
}

impl AdRole {
    /// Whether this AD is willing to carry any third-party transit traffic
    /// at all (policy may still restrict which).
    #[inline]
    pub fn offers_transit(self) -> bool {
        matches!(self, AdRole::Transit | AdRole::Hybrid)
    }
}

impl fmt::Display for AdRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AdRole::Stub => "stub",
            AdRole::MultiHomedStub => "multi-homed-stub",
            AdRole::Transit => "transit",
            AdRole::Hybrid => "hybrid",
        };
        f.write_str(s)
    }
}

/// Classification of an inter-AD link, per paper Section 2.1: the topology
/// is "a hierarchy augmented with special purpose lateral links … as well as
/// special purpose bypass links".
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum LinkKind {
    /// A parent–child link of the hierarchy (adjacent levels).
    Hierarchical,
    /// A link between two ADs at the same hierarchy level (e.g. two
    /// regionals, or two campuses with a private line).
    Lateral,
    /// A link that skips at least one hierarchy level (e.g. a campus
    /// connected directly to a backbone).
    Bypass,
}

impl fmt::Display for LinkKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LinkKind::Hierarchical => "hierarchical",
            LinkKind::Lateral => "lateral",
            LinkKind::Bypass => "bypass",
        };
        f.write_str(s)
    }
}

impl LinkKind {
    /// Classify a link by the levels of its endpoints.
    pub fn classify(a: AdLevel, b: AdLevel) -> LinkKind {
        let (lo, hi) = if a.rank() <= b.rank() { (a, b) } else { (b, a) };
        if lo == hi {
            LinkKind::Lateral
        } else if hi.rank() - lo.rank() == 1 {
            LinkKind::Hierarchical
        } else {
            LinkKind::Bypass
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_rank_ordering() {
        assert!(AdLevel::Backbone.rank() > AdLevel::Regional.rank());
        assert!(AdLevel::Regional.rank() > AdLevel::Metro.rank());
        assert!(AdLevel::Metro.rank() > AdLevel::Campus.rank());
        assert!(AdLevel::Backbone > AdLevel::Campus);
    }

    #[test]
    fn link_kind_classification() {
        use AdLevel::*;
        assert_eq!(LinkKind::classify(Campus, Metro), LinkKind::Hierarchical);
        assert_eq!(LinkKind::classify(Metro, Campus), LinkKind::Hierarchical);
        assert_eq!(LinkKind::classify(Regional, Regional), LinkKind::Lateral);
        assert_eq!(LinkKind::classify(Campus, Backbone), LinkKind::Bypass);
        assert_eq!(LinkKind::classify(Campus, Regional), LinkKind::Bypass);
        assert_eq!(
            LinkKind::classify(Backbone, Regional),
            LinkKind::Hierarchical
        );
    }

    #[test]
    fn roles_transit_willingness() {
        assert!(!AdRole::Stub.offers_transit());
        assert!(!AdRole::MultiHomedStub.offers_transit());
        assert!(AdRole::Transit.offers_transit());
        assert!(AdRole::Hybrid.offers_transit());
    }

    #[test]
    fn display_forms() {
        assert_eq!(AdId(7).to_string(), "AD7");
        assert_eq!(LinkId(3).to_string(), "L3");
        assert_eq!(AdLevel::Backbone.to_string(), "backbone");
        assert_eq!(AdRole::MultiHomedStub.to_string(), "multi-homed-stub");
        assert_eq!(LinkKind::Bypass.to_string(), "bypass");
    }

    #[test]
    fn id_round_trip() {
        let id: AdId = 42u32.into();
        assert_eq!(id.index(), 42);
        assert_eq!(LinkId(9).index(), 9);
    }
}
