//! AD-level internet topology model for inter-Administrative-Domain routing.
//!
//! This crate implements the topology model of Section 2.1 of *Design of
//! Inter-Administrative Domain Routing Protocols* (Breslau & Estrin, SIGCOMM
//! 1990): an internet is a graph whose nodes are **Administrative Domains**
//! (ADs) — sets of hosts, networks and gateways under a single authority —
//! and whose edges are inter-AD links. Following Section 4.1 of the paper,
//! routing is treated entirely at the granularity of ADs: an inter-AD route
//! is a sequence of ADs, and intra-AD detail is deliberately abstracted away.
//!
//! The expected topology (paper Figure 1) is a hierarchy — backbone,
//! regional, metropolitan, and campus networks — *augmented* with lateral
//! links between peers and bypass links that skip hierarchy levels. The
//! [`generate`] module produces seeded random internets of exactly this
//! shape at any scale, plus canonical graphs for protocol unit tests.
//!
//! The [`order`] module implements the global partial ordering of ADs used
//! by the NIST/ECMA proposal (paper Section 5.1.1) together with the
//! up/down link labelling and the valley-freedom rule that the ordering
//! induces.

pub mod algo;
pub mod analysis;
pub mod delta;
pub mod generate;
pub mod graph;
pub mod ids;
pub mod io;
pub mod order;
pub mod regions;
pub mod render;

pub use algo::{bfs_tree, connected_components, dijkstra, is_connected, PathCost};
pub use analysis::{articulation_ads, degree_stats, egress_diversity, DegreeStats};
pub use delta::TopoDelta;
pub use generate::{clique, grid, line, ring, star, HierarchyConfig};
pub use graph::{Ad, Link, Topology};
pub use ids::{AdId, AdLevel, AdRole, LinkId, LinkKind};
pub use io::{dump, parse, TopologyParseError};
pub use order::{LinkDirection, PartialOrder};
pub use regions::{min_cross_region_delay, RegionMap};
pub use render::{render_path, render_tree};
