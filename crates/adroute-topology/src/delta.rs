//! Incremental topology deltas.
//!
//! A Route Server's view of the internet is a [`Topology`] rebuilt from
//! flooded link-state advertisements. Rather than replacing the whole view
//! on every event, consumers can apply a [`TopoDelta`] in place and
//! invalidate only the derived state the delta can actually affect.
//!
//! Deltas are **endpoint-addressed**: different views of the same internet
//! re-index [`crate::LinkId`]s independently (a flooded view only contains
//! adjacencies both endpoints confirmed), so a `LinkId` minted against one
//! view is meaningless in another. The AD endpoint pair is the stable name
//! of a link across views.

use crate::graph::Topology;
use crate::ids::AdId;

/// One incremental change to a topology view, addressed by the link's AD
/// endpoint pair (stable across re-indexed views).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopoDelta {
    /// The link between `a` and `b` went up or down.
    LinkState {
        /// One endpoint.
        a: AdId,
        /// The other endpoint.
        b: AdId,
        /// New operational state.
        up: bool,
    },
    /// The link between `a` and `b` changed metric.
    Metric {
        /// One endpoint.
        a: AdId,
        /// The other endpoint.
        b: AdId,
        /// New routing metric.
        metric: u32,
    },
}

impl TopoDelta {
    /// The endpoint pair naming the affected link.
    pub fn endpoints(&self) -> (AdId, AdId) {
        match *self {
            TopoDelta::LinkState { a, b, .. } | TopoDelta::Metric { a, b, .. } => (a, b),
        }
    }

    /// Whether, applied to `topo`, this delta can only remove routes or
    /// make them costlier — never create a route or improve one. A link
    /// going down and a metric increase are restrictive; a link coming up
    /// or a metric decrease can create new, cheaper routes. Returns `None`
    /// when `topo` has no link between the endpoints (the delta cannot be
    /// classified against that view).
    pub fn is_restrictive_on(&self, topo: &Topology) -> Option<bool> {
        let (a, b) = self.endpoints();
        let id = topo.link_between(a, b)?;
        Some(match *self {
            TopoDelta::LinkState { up, .. } => !up,
            TopoDelta::Metric { metric, .. } => metric >= topo.link(id).metric,
        })
    }

    /// Applies the delta to `topo` in place. Returns `false` (leaving the
    /// topology untouched) when no link exists between the endpoints —
    /// the view's structure predates this link, and the caller must fall
    /// back to installing a freshly rebuilt view.
    pub fn apply(&self, topo: &mut Topology) -> bool {
        let (a, b) = self.endpoints();
        let Some(id) = topo.link_between(a, b) else {
            return false;
        };
        match *self {
            TopoDelta::LinkState { up, .. } => {
                topo.set_link_up(id, up);
            }
            TopoDelta::Metric { metric, .. } => {
                topo.set_metric(id, metric);
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::ring;
    use crate::ids::LinkId;

    #[test]
    fn link_state_delta_applies_by_endpoints() {
        let mut t = ring(4);
        let d = TopoDelta::LinkState {
            a: AdId(1),
            b: AdId(0),
            up: false,
        };
        assert_eq!(d.is_restrictive_on(&t), Some(true));
        assert!(d.apply(&mut t));
        let l = t.link_between(AdId(0), AdId(1)).unwrap();
        assert!(!t.link(l).up);
        let up = TopoDelta::LinkState {
            a: AdId(0),
            b: AdId(1),
            up: true,
        };
        assert_eq!(up.is_restrictive_on(&t), Some(false));
        assert!(up.apply(&mut t));
        assert!(t.link(l).up);
    }

    #[test]
    fn metric_delta_classifies_by_direction() {
        let mut t = ring(4);
        let l = t.link_between(AdId(0), AdId(1)).unwrap();
        t.set_metric(l, 5);
        let worse = TopoDelta::Metric {
            a: AdId(0),
            b: AdId(1),
            metric: 9,
        };
        let better = TopoDelta::Metric {
            a: AdId(0),
            b: AdId(1),
            metric: 2,
        };
        assert_eq!(worse.is_restrictive_on(&t), Some(true));
        assert_eq!(better.is_restrictive_on(&t), Some(false));
        assert!(worse.apply(&mut t));
        assert_eq!(t.link(l).metric, 9);
    }

    #[test]
    fn unknown_link_is_rejected() {
        let mut t = ring(4);
        let d = TopoDelta::LinkState {
            a: AdId(0),
            b: AdId(2),
            up: false,
        };
        assert_eq!(d.is_restrictive_on(&t), None);
        assert!(!d.apply(&mut t));
        assert!(t.links().all(|l| l.up), "failed apply must not mutate");
        let _ = LinkId(0);
    }
}
