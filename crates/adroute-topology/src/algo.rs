//! Graph algorithms over [`Topology`]: BFS, Dijkstra, connectivity.
//!
//! These are the policy-free building blocks; policy-constrained search
//! (which must track the previous AD in the path) lives in
//! `adroute-policy::legality`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::graph::Topology;
use crate::ids::AdId;

/// Cost of a shortest path, or unreachability.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PathCost {
    /// Reachable at the given total metric.
    Finite(u64),
    /// No operational path exists.
    Unreachable,
}

impl PathCost {
    /// The finite cost, if reachable.
    pub fn finite(self) -> Option<u64> {
        match self {
            PathCost::Finite(c) => Some(c),
            PathCost::Unreachable => None,
        }
    }
}

/// Single-source shortest paths by link metric over operational links.
///
/// Returns `(cost, parent)` vectors indexed by AD. `parent[src]` is `None`;
/// unreachable ADs have cost [`PathCost::Unreachable`] and parent `None`.
/// Ties are broken toward the smaller neighbor id, so results are
/// deterministic.
pub fn dijkstra(topo: &Topology, src: AdId) -> (Vec<PathCost>, Vec<Option<AdId>>) {
    let n = topo.num_ads();
    let mut cost = vec![u64::MAX; n];
    let mut parent: Vec<Option<AdId>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    cost[src.index()] = 0;
    heap.push(Reverse((0u64, src)));
    while let Some(Reverse((c, ad))) = heap.pop() {
        if c > cost[ad.index()] {
            continue;
        }
        for (nbr, link) in topo.neighbors(ad) {
            let nc = c + u64::from(topo.link(link).metric);
            let slot = &mut cost[nbr.index()];
            if nc < *slot || (nc == *slot && parent[nbr.index()].is_some_and(|p| ad < p)) {
                *slot = nc;
                parent[nbr.index()] = Some(ad);
                heap.push(Reverse((nc, nbr)));
            }
        }
    }
    let cost = cost
        .into_iter()
        .map(|c| {
            if c == u64::MAX {
                PathCost::Unreachable
            } else {
                PathCost::Finite(c)
            }
        })
        .collect();
    (cost, parent)
}

/// Reconstructs the path `src … dst` from a Dijkstra/BFS parent vector.
/// Returns `None` if `dst` is unreachable.
pub fn extract_path(parent: &[Option<AdId>], src: AdId, dst: AdId) -> Option<Vec<AdId>> {
    if src == dst {
        return Some(vec![src]);
    }
    let mut path = vec![dst];
    let mut cur = dst;
    while let Some(p) = parent[cur.index()] {
        path.push(p);
        cur = p;
        if cur == src {
            path.reverse();
            return Some(path);
        }
        if path.len() > parent.len() {
            return None; // defensive: malformed parent vector
        }
    }
    None
}

/// Breadth-first shortest-hop tree from `src` over operational links.
/// Returns `(hops, parent)`; unreachable ADs have `hops == u32::MAX`.
pub fn bfs_tree(topo: &Topology, src: AdId) -> (Vec<u32>, Vec<Option<AdId>>) {
    let n = topo.num_ads();
    let mut hops = vec![u32::MAX; n];
    let mut parent = vec![None; n];
    let mut queue = std::collections::VecDeque::new();
    hops[src.index()] = 0;
    queue.push_back(src);
    while let Some(ad) = queue.pop_front() {
        for (nbr, _) in topo.neighbors(ad) {
            if hops[nbr.index()] == u32::MAX {
                hops[nbr.index()] = hops[ad.index()] + 1;
                parent[nbr.index()] = Some(ad);
                queue.push_back(nbr);
            }
        }
    }
    (hops, parent)
}

/// Whether every AD can reach every other AD over operational links.
pub fn is_connected(topo: &Topology) -> bool {
    if topo.num_ads() == 0 {
        return true;
    }
    let (hops, _) = bfs_tree(topo, AdId(0));
    hops.iter().all(|&h| h != u32::MAX)
}

/// Partition of ADs into connected components (over operational links).
/// Component ids are assigned in order of lowest member AD id.
pub fn connected_components(topo: &Topology) -> Vec<u32> {
    let n = topo.num_ads();
    let mut comp = vec![u32::MAX; n];
    let mut next = 0;
    for start in 0..n {
        if comp[start] != u32::MAX {
            continue;
        }
        let mut stack = vec![AdId(start as u32)];
        comp[start] = next;
        while let Some(ad) = stack.pop() {
            for (nbr, _) in topo.neighbors(ad) {
                if comp[nbr.index()] == u32::MAX {
                    comp[nbr.index()] = next;
                    stack.push(nbr);
                }
            }
        }
        next += 1;
    }
    comp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{line, ring};
    use crate::ids::LinkId;

    #[test]
    fn dijkstra_on_line() {
        let t = line(5);
        let (cost, parent) = dijkstra(&t, AdId(0));
        assert_eq!(cost[4], PathCost::Finite(4));
        let path = extract_path(&parent, AdId(0), AdId(4)).unwrap();
        assert_eq!(path, vec![AdId(0), AdId(1), AdId(2), AdId(3), AdId(4)]);
    }

    #[test]
    fn dijkstra_respects_metrics() {
        let mut t = ring(4); // 0-1-2-3-0
                             // Make 0-1 expensive; 0->2 should go via 3.
        let l01 = t.link_between(AdId(0), AdId(1)).unwrap();
        t.set_metric(l01, 10);
        let (cost, parent) = dijkstra(&t, AdId(0));
        assert_eq!(cost[2], PathCost::Finite(2));
        assert_eq!(
            extract_path(&parent, AdId(0), AdId(2)).unwrap(),
            vec![AdId(0), AdId(3), AdId(2)]
        );
    }

    #[test]
    fn dijkstra_unreachable_after_cut() {
        let mut t = line(3);
        t.set_link_up(LinkId(1), false);
        let (cost, parent) = dijkstra(&t, AdId(0));
        assert_eq!(cost[2], PathCost::Unreachable);
        assert!(extract_path(&parent, AdId(0), AdId(2)).is_none());
        assert_eq!(cost[2].finite(), None);
    }

    #[test]
    fn bfs_hops_on_ring() {
        let t = ring(6);
        let (hops, _) = bfs_tree(&t, AdId(0));
        assert_eq!(hops[3], 3);
        assert_eq!(hops[5], 1);
    }

    #[test]
    fn connectivity_and_components() {
        let mut t = line(4);
        assert!(is_connected(&t));
        assert_eq!(connected_components(&t), vec![0, 0, 0, 0]);
        t.set_link_up(LinkId(1), false); // cut 1-2
        assert!(!is_connected(&t));
        assert_eq!(connected_components(&t), vec![0, 0, 1, 1]);
    }

    #[test]
    fn self_path_is_trivial() {
        let t = line(2);
        let (_, parent) = dijkstra(&t, AdId(0));
        assert_eq!(
            extract_path(&parent, AdId(0), AdId(0)).unwrap(),
            vec![AdId(0)]
        );
    }
}
