//! The AD-level internet graph.

use crate::ids::{AdId, AdLevel, AdRole, LinkId, LinkKind};

/// An Administrative Domain: a node of the inter-AD graph.
#[derive(Clone, Debug)]
pub struct Ad {
    /// Dense identifier of this AD.
    pub id: AdId,
    /// Position in the Figure-1 hierarchy.
    pub level: AdLevel,
    /// Transit behaviour classification.
    pub role: AdRole,
}

/// An undirected inter-AD link: an edge of the inter-AD graph.
#[derive(Clone, Debug)]
pub struct Link {
    /// Dense identifier of this link.
    pub id: LinkId,
    /// One endpoint (the lower `AdId` by construction).
    pub a: AdId,
    /// The other endpoint.
    pub b: AdId,
    /// Hierarchical / lateral / bypass classification.
    pub kind: LinkKind,
    /// Abstract routing metric (cost) of traversing this link; protocols
    /// that ignore metrics treat every link as cost 1.
    pub metric: u32,
    /// Message propagation delay across this link in simulated
    /// microseconds. Used by the discrete-event engine.
    pub delay_us: u64,
    /// Whether the link is currently operational. Failure injection flips
    /// this; protocols learn about it via link events.
    pub up: bool,
}

impl Link {
    /// Given one endpoint, returns the other.
    ///
    /// # Panics
    /// Panics if `from` is not an endpoint of this link.
    #[inline]
    pub fn other(&self, from: AdId) -> AdId {
        if from == self.a {
            self.b
        } else if from == self.b {
            self.a
        } else {
            panic!("{from} is not an endpoint of {}", self.id)
        }
    }

    /// Whether `ad` is one of this link's endpoints.
    #[inline]
    pub fn touches(&self, ad: AdId) -> bool {
        self.a == ad || self.b == ad
    }
}

/// An AD-level internet: the graph over which every protocol in this
/// workspace runs.
///
/// The structure is immutable except for per-link up/down state, matching
/// the paper's assumption (Section 2.2) that inter-AD *membership* changes
/// rarely while individual inter-AD links do fail and recover.
#[derive(Clone, Debug)]
pub struct Topology {
    ads: Vec<Ad>,
    links: Vec<Link>,
    /// `adj[ad] = [(neighbor, link), …]` sorted by neighbor id for
    /// determinism.
    adj: Vec<Vec<(AdId, LinkId)>>,
}

impl Topology {
    /// Creates a topology from a list of ADs (which must be densely numbered
    /// `0..n` in order) and undirected edges `(a, b, metric)`.
    ///
    /// Link kinds are derived from endpoint levels; link delay defaults to
    /// 1000 µs and may be adjusted with [`Topology::set_delay`].
    ///
    /// # Panics
    /// Panics if AD ids are not dense and in order, if an edge references a
    /// missing AD, if an edge is a self-loop, or if a duplicate edge occurs.
    pub fn new(ads: Vec<Ad>, edges: &[(AdId, AdId, u32)]) -> Topology {
        for (i, ad) in ads.iter().enumerate() {
            assert_eq!(ad.id.index(), i, "AD ids must be dense and in order");
        }
        let mut links = Vec::with_capacity(edges.len());
        let mut adj = vec![Vec::new(); ads.len()];
        let mut seen = std::collections::HashSet::new();
        for (i, &(a, b, metric)) in edges.iter().enumerate() {
            assert!(a != b, "self-loop at {a}");
            assert!(
                a.index() < ads.len() && b.index() < ads.len(),
                "edge endpoint out of range"
            );
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            assert!(seen.insert((lo, hi)), "duplicate edge {lo}-{hi}");
            let id = LinkId(i as u32);
            let kind = LinkKind::classify(ads[lo.index()].level, ads[hi.index()].level);
            links.push(Link {
                id,
                a: lo,
                b: hi,
                kind,
                metric,
                delay_us: 1000,
                up: true,
            });
            adj[lo.index()].push((hi, id));
            adj[hi.index()].push((lo, id));
        }
        for nbrs in &mut adj {
            nbrs.sort_unstable();
        }
        Topology { ads, links, adj }
    }

    /// Number of ADs.
    #[inline]
    pub fn num_ads(&self) -> usize {
        self.ads.len()
    }

    /// Number of links (up or down).
    #[inline]
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// The AD with the given id.
    #[inline]
    pub fn ad(&self, id: AdId) -> &Ad {
        &self.ads[id.index()]
    }

    /// The link with the given id.
    #[inline]
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// Iterator over all ADs in id order.
    pub fn ads(&self) -> impl Iterator<Item = &Ad> {
        self.ads.iter()
    }

    /// Iterator over all links in id order.
    pub fn links(&self) -> impl Iterator<Item = &Link> {
        self.links.iter()
    }

    /// Iterator over all AD ids.
    pub fn ad_ids(&self) -> impl Iterator<Item = AdId> {
        (0..self.ads.len() as u32).map(AdId)
    }

    /// Neighbors of `ad` reachable over *up* links, with the connecting
    /// link, in deterministic (neighbor-id) order.
    pub fn neighbors(&self, ad: AdId) -> impl Iterator<Item = (AdId, LinkId)> + '_ {
        self.adj[ad.index()]
            .iter()
            .copied()
            .filter(move |&(_, l)| self.links[l.index()].up)
    }

    /// Neighbors of `ad` including those across failed links.
    pub fn all_neighbors(&self, ad: AdId) -> impl Iterator<Item = (AdId, LinkId)> + '_ {
        self.adj[ad.index()].iter().copied()
    }

    /// Degree of `ad` counting only operational links.
    pub fn degree(&self, ad: AdId) -> usize {
        self.neighbors(ad).count()
    }

    /// Degree of `ad` counting all links.
    pub fn full_degree(&self, ad: AdId) -> usize {
        self.adj[ad.index()].len()
    }

    /// Finds the link between `a` and `b`, if any (up or down).
    pub fn link_between(&self, a: AdId, b: AdId) -> Option<LinkId> {
        self.neighbor_slot(a, b)
            .map(|slot| self.adj[a.index()][slot].1)
    }

    /// The position of `b` in `a`'s adjacency list, if adjacent. Protocol
    /// state keyed per-neighbor can use this as a dense arena index (the
    /// list is sorted by neighbor id, so slots are stable for a topology).
    pub fn neighbor_slot(&self, a: AdId, b: AdId) -> Option<usize> {
        self.adj[a.index()]
            .binary_search_by_key(&b, |&(nbr, _)| nbr)
            .ok()
    }

    /// Marks a link down. Returns the previous state.
    pub fn set_link_up(&mut self, id: LinkId, up: bool) -> bool {
        std::mem::replace(&mut self.links[id.index()].up, up)
    }

    /// Overrides the propagation delay of a link.
    pub fn set_delay(&mut self, id: LinkId, delay_us: u64) {
        self.links[id.index()].delay_us = delay_us;
    }

    /// Overrides the metric of a link.
    pub fn set_metric(&mut self, id: LinkId, metric: u32) {
        self.links[id.index()].metric = metric;
    }

    /// Re-derives each AD's [`AdRole`] from its current degree: degree-1
    /// non-transit ADs become [`AdRole::Stub`], higher-degree campus ADs
    /// become [`AdRole::MultiHomedStub`] unless already marked hybrid.
    ///
    /// The generator calls this after wiring; tests may call it after
    /// hand-building topologies.
    pub fn reclassify_roles(&mut self) {
        for i in 0..self.ads.len() {
            let deg = self.adj[i].len();
            let ad = &mut self.ads[i];
            ad.role = match ad.level {
                AdLevel::Backbone | AdLevel::Regional => AdRole::Transit,
                AdLevel::Metro => AdRole::Hybrid,
                AdLevel::Campus => {
                    if deg <= 1 {
                        AdRole::Stub
                    } else {
                        AdRole::MultiHomedStub
                    }
                }
            };
        }
    }

    /// Counts links by kind: `(hierarchical, lateral, bypass)`.
    pub fn link_kind_counts(&self) -> (usize, usize, usize) {
        let mut h = 0;
        let mut l = 0;
        let mut b = 0;
        for link in &self.links {
            match link.kind {
                LinkKind::Hierarchical => h += 1,
                LinkKind::Lateral => l += 1,
                LinkKind::Bypass => b += 1,
            }
        }
        (h, l, b)
    }

    /// Counts ADs by role: `(stub, multi-homed, transit, hybrid)`.
    pub fn role_counts(&self) -> (usize, usize, usize, usize) {
        let mut s = 0;
        let mut m = 0;
        let mut t = 0;
        let mut h = 0;
        for ad in &self.ads {
            match ad.role {
                AdRole::Stub => s += 1,
                AdRole::MultiHomedStub => m += 1,
                AdRole::Transit => t += 1,
                AdRole::Hybrid => h += 1,
            }
        }
        (s, m, t, h)
    }

    /// Validates that a path is a sequence of adjacent, operational links
    /// with no repeated AD. Returns `false` for paths shorter than 1 hop.
    pub fn is_simple_path(&self, path: &[AdId]) -> bool {
        if path.len() < 2 {
            return false;
        }
        let mut seen = std::collections::HashSet::new();
        for ad in path {
            if !seen.insert(*ad) {
                return false;
            }
        }
        path.windows(2).all(|w| {
            self.link_between(w[0], w[1])
                .map(|l| self.link(l).up)
                .unwrap_or(false)
        })
    }
}

/// Convenience constructor for an [`Ad`] used by generators and tests.
pub fn make_ad(id: u32, level: AdLevel) -> Ad {
    let role = match level {
        AdLevel::Backbone | AdLevel::Regional => AdRole::Transit,
        AdLevel::Metro => AdRole::Hybrid,
        AdLevel::Campus => AdRole::Stub,
    };
    Ad {
        id: AdId(id),
        level,
        role,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Topology {
        // 0(backbone) - 1(regional) - 2(campus), plus bypass 0-2
        let ads = vec![
            make_ad(0, AdLevel::Backbone),
            make_ad(1, AdLevel::Regional),
            make_ad(2, AdLevel::Campus),
        ];
        Topology::new(
            ads,
            &[
                (AdId(0), AdId(1), 1),
                (AdId(1), AdId(2), 1),
                (AdId(0), AdId(2), 5),
            ],
        )
    }

    #[test]
    fn construction_and_queries() {
        let t = tiny();
        assert_eq!(t.num_ads(), 3);
        assert_eq!(t.num_links(), 3);
        assert_eq!(t.degree(AdId(0)), 2);
        assert_eq!(t.link_between(AdId(0), AdId(2)), Some(LinkId(2)));
        assert_eq!(t.link(LinkId(2)).kind, LinkKind::Bypass);
        assert_eq!(t.link(LinkId(0)).kind, LinkKind::Hierarchical);
        // Regional-Campus skips Metro => bypass per classify (difference 2).
        assert_eq!(t.link(LinkId(1)).kind, LinkKind::Bypass);
    }

    #[test]
    fn link_other_endpoint() {
        let t = tiny();
        let l = t.link(LinkId(0));
        assert_eq!(l.other(AdId(0)), AdId(1));
        assert_eq!(l.other(AdId(1)), AdId(0));
        assert!(l.touches(AdId(0)));
        assert!(!l.touches(AdId(2)));
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn link_other_panics_for_non_endpoint() {
        let t = tiny();
        t.link(LinkId(0)).other(AdId(2));
    }

    #[test]
    fn link_failure_hides_neighbors() {
        let mut t = tiny();
        assert_eq!(t.neighbors(AdId(0)).count(), 2);
        t.set_link_up(LinkId(0), false);
        assert_eq!(t.neighbors(AdId(0)).count(), 1);
        assert_eq!(t.all_neighbors(AdId(0)).count(), 2);
        assert_eq!(t.degree(AdId(0)), 1);
        assert_eq!(t.full_degree(AdId(0)), 2);
        t.set_link_up(LinkId(0), true);
        assert_eq!(t.degree(AdId(0)), 2);
    }

    #[test]
    fn simple_path_validation() {
        let mut t = tiny();
        assert!(t.is_simple_path(&[AdId(0), AdId(1), AdId(2)]));
        assert!(t.is_simple_path(&[AdId(0), AdId(2)]));
        // too short
        assert!(!t.is_simple_path(&[AdId(0)]));
        // repeated AD
        assert!(!t.is_simple_path(&[AdId(0), AdId(1), AdId(0)]));
        // not adjacent after failure
        t.set_link_up(LinkId(2), false);
        assert!(!t.is_simple_path(&[AdId(0), AdId(2)]));
    }

    #[test]
    fn reclassify_roles_by_degree() {
        let ads = vec![
            make_ad(0, AdLevel::Regional),
            make_ad(1, AdLevel::Regional),
            make_ad(2, AdLevel::Campus),
        ];
        let mut t = Topology::new(
            ads,
            &[
                (AdId(0), AdId(1), 1),
                (AdId(0), AdId(2), 1),
                (AdId(1), AdId(2), 1),
            ],
        );
        t.reclassify_roles();
        assert_eq!(t.ad(AdId(2)).role, AdRole::MultiHomedStub);
        assert_eq!(t.ad(AdId(0)).role, AdRole::Transit);
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn duplicate_edge_rejected() {
        let ads = vec![make_ad(0, AdLevel::Campus), make_ad(1, AdLevel::Campus)];
        Topology::new(ads, &[(AdId(0), AdId(1), 1), (AdId(1), AdId(0), 2)]);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        let ads = vec![make_ad(0, AdLevel::Campus)];
        Topology::new(ads, &[(AdId(0), AdId(0), 1)]);
    }

    #[test]
    fn counts() {
        let t = tiny();
        let (h, l, b) = t.link_kind_counts();
        assert_eq!((h, l, b), (1, 0, 2));
        let (s, _m, tr, _hy) = t.role_counts();
        assert_eq!(s, 1);
        assert_eq!(tr, 2);
    }
}
