//! Topology generators.
//!
//! [`HierarchyConfig`] realizes the internet model of paper Section 2.1 /
//! Figure 1: a backbone–regional–metro–campus hierarchy augmented with
//! lateral links at every level and bypass links that skip levels. The
//! canonical graphs ([`line()`], [`ring`], [`grid`], [`clique`], [`star`])
//! exist for protocol unit tests and convergence experiments.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::graph::{make_ad, Ad, Topology};
use crate::ids::{AdId, AdLevel};

/// Parameters for generating a Figure-1-style hierarchical internet.
///
/// The generated topology is always connected: every non-backbone AD gets at
/// least one hierarchical parent, and the backbone ADs form a connected
/// mesh. Lateral and bypass links are then sprinkled on top with the given
/// probabilities, and a fraction of campus ADs are multi-homed to a second
/// parent.
#[derive(Clone, Debug)]
pub struct HierarchyConfig {
    /// Number of long-haul backbone ADs (≥ 1).
    pub backbones: usize,
    /// Regional ADs attached to each backbone.
    pub regionals_per_backbone: usize,
    /// Metro ADs attached to each regional.
    pub metros_per_regional: usize,
    /// Campus ADs attached to each metro.
    pub campuses_per_metro: usize,
    /// Probability that a pair of same-level transit ADs (regional or
    /// metro) under consideration receives a lateral link.
    pub lateral_prob: f64,
    /// Probability that a campus AD receives a bypass link directly to a
    /// backbone or regional AD.
    pub bypass_prob: f64,
    /// Probability that a campus AD is multi-homed to a second metro.
    pub multihome_prob: f64,
    /// RNG seed; the same seed always yields the identical topology.
    pub seed: u64,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig {
            backbones: 2,
            regionals_per_backbone: 3,
            metros_per_regional: 3,
            campuses_per_metro: 4,
            lateral_prob: 0.15,
            bypass_prob: 0.05,
            multihome_prob: 0.15,
            seed: 1990,
        }
    }
}

impl HierarchyConfig {
    /// A small config roughly matching paper Figure 1 in scale.
    pub fn figure1() -> Self {
        HierarchyConfig {
            backbones: 2,
            regionals_per_backbone: 2,
            metros_per_regional: 2,
            campuses_per_metro: 2,
            lateral_prob: 0.25,
            bypass_prob: 0.15,
            multihome_prob: 0.25,
            seed: 1,
        }
    }

    /// Scales the hierarchy so the total AD count is approximately
    /// `target`, preserving the branching shape.
    pub fn with_approx_size(target: usize, seed: u64) -> Self {
        // total ≈ b * (1 + r * (1 + m * (1 + c))) with r=3, m=3, c=4:
        // per-backbone subtree = 1 + 3*(1 + 3*(1+4)) = 1 + 3*16 = 49.
        let per_backbone = 49usize;
        let backbones = (target / per_backbone).max(1);
        HierarchyConfig {
            backbones,
            seed,
            ..HierarchyConfig::default()
        }
    }

    /// Total AD count this config will generate.
    pub fn total_ads(&self) -> usize {
        let campuses_per_regional = self.metros_per_regional * self.campuses_per_metro;
        let per_backbone = 1 + self.regionals_per_backbone
            * (1 + self.metros_per_regional + campuses_per_regional);
        self.backbones * per_backbone
    }

    /// Generates the topology.
    pub fn generate(&self) -> Topology {
        assert!(self.backbones >= 1, "need at least one backbone");
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut ads: Vec<Ad> = Vec::new();
        let mut edges: Vec<(AdId, AdId, u32)> = Vec::new();
        let mut next = 0u32;
        let mut alloc = |level: AdLevel, ads: &mut Vec<Ad>| -> AdId {
            let id = next;
            next += 1;
            ads.push(make_ad(id, level));
            AdId(id)
        };

        // Backbone mesh: ring plus random chords for redundancy.
        let backbones: Vec<AdId> = (0..self.backbones)
            .map(|_| alloc(AdLevel::Backbone, &mut ads))
            .collect();
        for i in 0..backbones.len() {
            if backbones.len() > 1 {
                let j = (i + 1) % backbones.len();
                if i < j {
                    edges.push((backbones[i], backbones[j], 1));
                } else if backbones.len() > 2 {
                    edges.push((backbones[j], backbones[i], 1));
                }
            }
        }
        if backbones.len() > 3 {
            for i in 0..backbones.len() {
                for j in (i + 2)..backbones.len() {
                    if (i, j) != (0, backbones.len() - 1) && rng.gen_bool(0.3) {
                        edges.push((backbones[i], backbones[j], 1));
                    }
                }
            }
        }

        let mut regionals: Vec<AdId> = Vec::new();
        let mut metros: Vec<AdId> = Vec::new();
        let mut campuses: Vec<AdId> = Vec::new();
        let mut metro_parent_count: Vec<(AdId, usize)> = Vec::new();

        for &bb in &backbones {
            for _ in 0..self.regionals_per_backbone {
                let r = alloc(AdLevel::Regional, &mut ads);
                edges.push((bb, r, 2));
                regionals.push(r);
                for _ in 0..self.metros_per_regional {
                    let m = alloc(AdLevel::Metro, &mut ads);
                    edges.push((r, m, 3));
                    metros.push(m);
                    metro_parent_count.push((m, 0));
                    for _ in 0..self.campuses_per_metro {
                        let c = alloc(AdLevel::Campus, &mut ads);
                        edges.push((m, c, 4));
                        campuses.push(c);
                    }
                }
            }
        }

        let mut edge_set: std::collections::HashSet<(AdId, AdId)> = edges
            .iter()
            .map(|&(a, b, _)| if a < b { (a, b) } else { (b, a) })
            .collect();
        let mut push_edge =
            |a: AdId, b: AdId, w: u32, edges: &mut Vec<(AdId, AdId, u32)>| -> bool {
                let key = if a < b { (a, b) } else { (b, a) };
                if a != b && edge_set.insert(key) {
                    edges.push((a, b, w));
                    true
                } else {
                    false
                }
            };

        // Lateral links between regionals and between metros (paper: "lateral
        // links and other forms of bypass will persist at all levels").
        for pool in [&regionals, &metros] {
            for i in 0..pool.len() {
                for j in (i + 1)..pool.len() {
                    if rng.gen_bool(self.lateral_prob / (1.0 + 0.05 * pool.len() as f64)) {
                        push_edge(pool[i], pool[j], 2, &mut edges);
                    }
                }
            }
        }

        // Campus-campus private lateral lines (rare).
        if campuses.len() >= 2 {
            let tries = (campuses.len() as f64 * self.lateral_prob * 0.3) as usize;
            for _ in 0..tries {
                let a = campuses[rng.gen_range(0..campuses.len())];
                let b = campuses[rng.gen_range(0..campuses.len())];
                push_edge(a, b, 5, &mut edges);
            }
        }

        // Bypass links: campus straight to a regional or backbone.
        for &c in &campuses {
            if rng.gen_bool(self.bypass_prob) {
                let target = if rng.gen_bool(0.5) && !regionals.is_empty() {
                    regionals[rng.gen_range(0..regionals.len())]
                } else {
                    backbones[rng.gen_range(0..backbones.len())]
                };
                push_edge(c, target, 4, &mut edges);
            }
        }

        // Multi-homing: campus to a second metro.
        if metros.len() > 1 {
            for &c in &campuses {
                if rng.gen_bool(self.multihome_prob) {
                    let m = metros[rng.gen_range(0..metros.len())];
                    push_edge(c, m, 4, &mut edges);
                }
            }
        }

        let mut topo = Topology::new(ads, &edges);
        topo.reclassify_roles();
        topo
    }
}

/// A path graph `0 - 1 - … - (n-1)`, all campus-level, unit metric.
pub fn line(n: usize) -> Topology {
    assert!(n >= 1);
    let ads = (0..n as u32).map(|i| make_ad(i, AdLevel::Campus)).collect();
    let edges: Vec<_> = (0..n as u32 - 1)
        .map(|i| (AdId(i), AdId(i + 1), 1))
        .collect();
    Topology::new(ads, &edges)
}

/// A cycle `0 - 1 - … - (n-1) - 0`, all campus-level, unit metric.
pub fn ring(n: usize) -> Topology {
    assert!(n >= 3);
    let ads = (0..n as u32).map(|i| make_ad(i, AdLevel::Campus)).collect();
    let mut edges: Vec<_> = (0..n as u32 - 1)
        .map(|i| (AdId(i), AdId(i + 1), 1))
        .collect();
    edges.push((AdId(0), AdId(n as u32 - 1), 1));
    Topology::new(ads, &edges)
}

/// A star: AD 0 (regional) at the hub, `n-1` campus leaves.
pub fn star(n: usize) -> Topology {
    assert!(n >= 2);
    let mut ads = vec![make_ad(0, AdLevel::Regional)];
    ads.extend((1..n as u32).map(|i| make_ad(i, AdLevel::Campus)));
    let edges: Vec<_> = (1..n as u32).map(|i| (AdId(0), AdId(i), 1)).collect();
    Topology::new(ads, &edges)
}

/// An `rows × cols` grid of campus ADs, unit metric.
pub fn grid(rows: usize, cols: usize) -> Topology {
    assert!(rows >= 1 && cols >= 1);
    let n = rows * cols;
    let ads = (0..n as u32).map(|i| make_ad(i, AdLevel::Campus)).collect();
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            let id = (r * cols + c) as u32;
            if c + 1 < cols {
                edges.push((AdId(id), AdId(id + 1), 1));
            }
            if r + 1 < rows {
                edges.push((AdId(id), AdId(id + cols as u32), 1));
            }
        }
    }
    Topology::new(ads, &edges)
}

/// A complete graph on `n` campus ADs, unit metric.
pub fn clique(n: usize) -> Topology {
    assert!(n >= 2);
    let ads = (0..n as u32).map(|i| make_ad(i, AdLevel::Campus)).collect();
    let mut edges = Vec::new();
    for i in 0..n as u32 {
        for j in (i + 1)..n as u32 {
            edges.push((AdId(i), AdId(j), 1));
        }
    }
    Topology::new(ads, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::is_connected;
    use crate::ids::{AdRole, LinkKind};

    #[test]
    fn default_hierarchy_is_connected_and_sized() {
        let cfg = HierarchyConfig::default();
        let t = cfg.generate();
        assert_eq!(t.num_ads(), cfg.total_ads());
        assert!(is_connected(&t));
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = HierarchyConfig::default();
        let a = cfg.generate();
        let b = cfg.generate();
        assert_eq!(a.num_ads(), b.num_ads());
        assert_eq!(a.num_links(), b.num_links());
        for (la, lb) in a.links().zip(b.links()) {
            assert_eq!((la.a, la.b, la.metric), (lb.a, lb.b, lb.metric));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = HierarchyConfig {
            seed: 1,
            ..Default::default()
        }
        .generate();
        let b = HierarchyConfig {
            seed: 2,
            ..Default::default()
        }
        .generate();
        // AD counts match (structure) but link sets should differ with
        // overwhelming probability.
        assert_eq!(a.num_ads(), b.num_ads());
        let ea: Vec<_> = a.links().map(|l| (l.a, l.b)).collect();
        let eb: Vec<_> = b.links().map(|l| (l.a, l.b)).collect();
        assert_ne!(ea, eb);
    }

    #[test]
    fn hierarchy_has_lateral_and_bypass_links() {
        let cfg = HierarchyConfig {
            backbones: 3,
            regionals_per_backbone: 4,
            metros_per_regional: 3,
            campuses_per_metro: 4,
            lateral_prob: 0.4,
            bypass_prob: 0.3,
            multihome_prob: 0.3,
            seed: 7,
        };
        let t = cfg.generate();
        let (h, l, b) = t.link_kind_counts();
        assert!(h > 0, "hierarchical links missing");
        assert!(l > 0, "lateral links missing");
        assert!(b > 0, "bypass links missing");
        let (_s, m, tr, _hy) = t.role_counts();
        assert!(m > 0, "no multi-homed stubs generated");
        assert!(tr > 0);
    }

    #[test]
    fn stub_classification_matches_degree() {
        let t = HierarchyConfig::default().generate();
        for ad in t.ads() {
            if ad.role == AdRole::Stub {
                assert_eq!(t.full_degree(ad.id), 1, "{} misclassified", ad.id);
            }
            if ad.role == AdRole::MultiHomedStub {
                assert!(t.full_degree(ad.id) >= 2);
            }
        }
    }

    #[test]
    fn approx_size_close_to_target() {
        for target in [50, 200, 1000] {
            let cfg = HierarchyConfig::with_approx_size(target, 3);
            let n = cfg.total_ads();
            assert!(n >= target / 2 && n <= target * 2, "{n} vs {target}");
        }
    }

    #[test]
    fn canonical_graphs() {
        assert_eq!(line(5).num_links(), 4);
        assert_eq!(ring(5).num_links(), 5);
        assert_eq!(star(5).num_links(), 4);
        assert_eq!(grid(3, 4).num_links(), 3 * 3 + 2 * 4);
        assert_eq!(clique(5).num_links(), 10);
        assert!(is_connected(&grid(4, 4)));
        assert!(clique(4).links().all(|l| l.kind == LinkKind::Lateral));
    }

    #[test]
    fn figure1_config_small() {
        let t = HierarchyConfig::figure1().generate();
        assert!(t.num_ads() < 40);
        assert!(is_connected(&t));
    }
}
