//! Plain-text serialization of topologies.
//!
//! Experiments and bug reports need to pin down *exactly* which internet
//! they ran on. The format is line-oriented and diff-friendly:
//!
//! ```text
//! # adroute topology v1
//! ad 0 backbone transit
//! ad 1 regional transit
//! ad 2 campus stub
//! link 0 1 metric 2 delay 1000 up
//! link 1 2 metric 4 delay 1000 down
//! ```
//!
//! [`dump`] and [`parse`] round-trip every field, including link state, so
//! a mid-experiment snapshot reloads verbatim.

use std::fmt::Write as _;

use crate::graph::{Ad, Topology};
use crate::ids::{AdId, AdLevel, AdRole};

/// Serializes a topology to the v1 text format.
pub fn dump(topo: &Topology) -> String {
    let mut out = String::from("# adroute topology v1\n");
    for ad in topo.ads() {
        let level = match ad.level {
            AdLevel::Backbone => "backbone",
            AdLevel::Regional => "regional",
            AdLevel::Metro => "metro",
            AdLevel::Campus => "campus",
        };
        let role = match ad.role {
            AdRole::Stub => "stub",
            AdRole::MultiHomedStub => "multihomed",
            AdRole::Transit => "transit",
            AdRole::Hybrid => "hybrid",
        };
        let _ = writeln!(out, "ad {} {} {}", ad.id.0, level, role);
    }
    for l in topo.links() {
        let _ = writeln!(
            out,
            "link {} {} metric {} delay {} {}",
            l.a.0,
            l.b.0,
            l.metric,
            l.delay_us,
            if l.up { "up" } else { "down" }
        );
    }
    out
}

/// An error produced while parsing the text format.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TopologyParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl std::fmt::Display for TopologyParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TopologyParseError {}

fn perr<T>(line: usize, message: impl Into<String>) -> Result<T, TopologyParseError> {
    Err(TopologyParseError {
        line,
        message: message.into(),
    })
}

/// Parses the v1 text format back into a [`Topology`].
pub fn parse(text: &str) -> Result<Topology, TopologyParseError> {
    let mut ads: Vec<Ad> = Vec::new();
    let mut edges: Vec<(AdId, AdId, u32)> = Vec::new();
    let mut extras: Vec<(u64, bool)> = Vec::new(); // (delay, up) per edge

    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("ad") => {
                let id: u32 = match parts.next().map(str::parse) {
                    Some(Ok(v)) => v,
                    _ => return perr(lineno, "expected numeric AD id"),
                };
                let level = match parts.next() {
                    Some("backbone") => AdLevel::Backbone,
                    Some("regional") => AdLevel::Regional,
                    Some("metro") => AdLevel::Metro,
                    Some("campus") => AdLevel::Campus,
                    other => return perr(lineno, format!("bad level {other:?}")),
                };
                let role = match parts.next() {
                    Some("stub") => AdRole::Stub,
                    Some("multihomed") => AdRole::MultiHomedStub,
                    Some("transit") => AdRole::Transit,
                    Some("hybrid") => AdRole::Hybrid,
                    other => return perr(lineno, format!("bad role {other:?}")),
                };
                if id as usize != ads.len() {
                    return perr(
                        lineno,
                        format!("AD ids must be dense; expected {}", ads.len()),
                    );
                }
                ads.push(Ad {
                    id: AdId(id),
                    level,
                    role,
                });
            }
            Some("link") => {
                let toks: Vec<&str> = parts.collect();
                // link A B metric M delay D up|down
                if toks.len() != 7 || toks[2] != "metric" || toks[4] != "delay" {
                    return perr(lineno, "expected 'link A B metric M delay D up|down'");
                }
                let num = |s: &str, what: &str| -> Result<u64, TopologyParseError> {
                    s.parse::<u64>().map_err(|_| TopologyParseError {
                        line: lineno,
                        message: format!("expected {what}, found '{s}'"),
                    })
                };
                let a = num(toks[0], "endpoint a")? as u32;
                let b = num(toks[1], "endpoint b")? as u32;
                let metric = num(toks[3], "metric value")? as u32;
                let delay = num(toks[5], "delay value")?;
                let up = match toks[6] {
                    "up" => true,
                    "down" => false,
                    other => return perr(lineno, format!("expected up/down, got '{other}'")),
                };
                edges.push((AdId(a), AdId(b), metric));
                extras.push((delay, up));
            }
            other => return perr(lineno, format!("unknown record {other:?}")),
        }
    }

    if ads.is_empty() {
        return perr(0, "no ADs defined");
    }
    for &(a, b, _) in &edges {
        if a.index() >= ads.len() || b.index() >= ads.len() {
            return perr(0, format!("link {a}-{b} references undefined AD"));
        }
    }
    // Preserve the declared roles: Topology::new derives nothing, but we
    // must not run reclassify_roles (the dump is authoritative).
    let declared: Vec<(AdLevel, AdRole)> = ads.iter().map(|a| (a.level, a.role)).collect();
    let mut topo = Topology::new(ads, &edges);
    for (i, (delay, up)) in extras.into_iter().enumerate() {
        let id = crate::ids::LinkId(i as u32);
        topo.set_delay(id, delay);
        if !up {
            topo.set_link_up(id, false);
        }
    }
    debug_assert!(topo
        .ads()
        .zip(declared.iter())
        .all(|(ad, &(lv, rl))| ad.level == lv && ad.role == rl));
    Ok(topo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{ring, HierarchyConfig};
    use crate::ids::LinkId;

    fn equivalent(a: &Topology, b: &Topology) -> bool {
        a.num_ads() == b.num_ads()
            && a.num_links() == b.num_links()
            && a.ads()
                .zip(b.ads())
                .all(|(x, y)| x.id == y.id && x.level == y.level && x.role == y.role)
            && a.links().zip(b.links()).all(|(x, y)| {
                x.a == y.a
                    && x.b == y.b
                    && x.metric == y.metric
                    && x.delay_us == y.delay_us
                    && x.up == y.up
                    && x.kind == y.kind
            })
    }

    #[test]
    fn round_trip_generated_internet() {
        let t = HierarchyConfig::default().generate();
        let text = dump(&t);
        let back = parse(&text).unwrap();
        assert!(equivalent(&t, &back));
    }

    #[test]
    fn round_trip_preserves_link_state_and_delay() {
        let mut t = ring(5);
        t.set_link_up(LinkId(2), false);
        t.set_delay(LinkId(1), 42_000);
        t.set_metric(LinkId(0), 9);
        let back = parse(&dump(&t)).unwrap();
        assert!(equivalent(&t, &back));
        assert!(!back.link(LinkId(2)).up);
        assert_eq!(back.link(LinkId(1)).delay_us, 42_000);
        assert_eq!(back.link(LinkId(0)).metric, 9);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "
            # a comment

            ad 0 campus stub
            ad 1 campus stub
            link 0 1 metric 1 delay 500 up
        ";
        let t = parse(text).unwrap();
        assert_eq!(t.num_ads(), 2);
        assert_eq!(t.num_links(), 1);
        assert_eq!(t.link(LinkId(0)).delay_us, 500);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse("ad 0 campus stub\nad 1 purple stub").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("bad level"), "{e}");
        let e = parse("ad 5 campus stub").unwrap_err();
        assert!(e.message.contains("dense"), "{e}");
        let e = parse("frob").unwrap_err();
        assert!(e.message.contains("unknown record"), "{e}");
        let e = parse("").unwrap_err();
        assert!(e.message.contains("no ADs"), "{e}");
        let e = parse("ad 0 campus stub\nlink 0 9 metric 1 delay 1 up").unwrap_err();
        assert!(e.message.contains("undefined AD"), "{e}");
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(24))]
        #[test]
        fn round_trip_any_seed(seed in 0u64..500) {
            let t = HierarchyConfig { seed, ..HierarchyConfig::figure1() }.generate();
            let back = parse(&dump(&t)).unwrap();
            proptest::prop_assert!(equivalent(&t, &back));
        }
    }
}
