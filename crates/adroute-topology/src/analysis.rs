//! Structural analysis of AD-level internets.
//!
//! The paper's Section 2.1 justifies multi-homing and bypass links as
//! robustness measures. This module quantifies that structure:
//! articulation ADs (single points of failure whose loss partitions the
//! internet), bridge links, degree statistics, and path diversity — the
//! numbers behind the Figure-1 experiment and the redundancy tests.

use crate::graph::Topology;
use crate::ids::AdId;

/// Degree distribution summary.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
}

/// Computes degree statistics over operational links.
pub fn degree_stats(topo: &Topology) -> DegreeStats {
    let mut min = usize::MAX;
    let mut max = 0;
    let mut sum = 0usize;
    let n = topo.num_ads();
    if n == 0 {
        return DegreeStats {
            min: 0,
            max: 0,
            mean: 0.0,
        };
    }
    for ad in topo.ad_ids() {
        let d = topo.degree(ad);
        min = min.min(d);
        max = max.max(d);
        sum += d;
    }
    DegreeStats {
        min,
        max,
        mean: sum as f64 / n as f64,
    }
}

/// Finds the articulation ADs of the operational graph: ADs whose removal
/// increases the number of connected components. A transit AD that is an
/// articulation point is a single point of failure for some pair of
/// customers — exactly what multi-homing and lateral links exist to
/// eliminate.
///
/// Iterative Tarjan lowpoint computation; deterministic order.
pub fn articulation_ads(topo: &Topology) -> Vec<AdId> {
    let n = topo.num_ads();
    let mut disc = vec![0u32; n]; // 0 = unvisited; otherwise discovery time
    let mut low = vec![0u32; n];
    let mut is_art = vec![false; n];
    let mut timer = 1u32;

    for root in topo.ad_ids() {
        if disc[root.index()] != 0 {
            continue;
        }
        // Iterative DFS: stack of (node, parent, neighbor iterator index).
        let mut stack: Vec<(AdId, Option<AdId>, usize)> = vec![(root, None, 0)];
        let mut root_children = 0usize;
        disc[root.index()] = timer;
        low[root.index()] = timer;
        timer += 1;
        while let Some(&mut (ad, parent, ref mut idx)) = stack.last_mut() {
            let nbrs: Vec<AdId> = topo.neighbors(ad).map(|(n, _)| n).collect();
            if *idx < nbrs.len() {
                let nbr = nbrs[*idx];
                *idx += 1;
                if disc[nbr.index()] == 0 {
                    disc[nbr.index()] = timer;
                    low[nbr.index()] = timer;
                    timer += 1;
                    if ad == root {
                        root_children += 1;
                    }
                    stack.push((nbr, Some(ad), 0));
                } else if Some(nbr) != parent {
                    low[ad.index()] = low[ad.index()].min(disc[nbr.index()]);
                }
            } else {
                stack.pop();
                if let Some(&(pad, _, _)) = stack.last() {
                    low[pad.index()] = low[pad.index()].min(low[ad.index()]);
                    if pad != root && low[ad.index()] >= disc[pad.index()] {
                        is_art[pad.index()] = true;
                    }
                }
            }
        }
        if root_children > 1 {
            is_art[root.index()] = true;
        }
    }
    (0..n as u32)
        .map(AdId)
        .filter(|a| is_art[a.index()])
        .collect()
}

/// Counts vertex-disjoint-ish path diversity: for a pair `(a, b)`, the
/// number of neighbors of `a` from which `b` remains reachable without
/// going back through `a`. A multi-homed stub has diversity ≥ 2 to the
/// rest of the internet.
pub fn egress_diversity(topo: &Topology, a: AdId, b: AdId) -> usize {
    if a == b {
        return 0;
    }
    let mut count = 0;
    for (nbr, _) in topo.neighbors(a) {
        if nbr == b {
            count += 1;
            continue;
        }
        // BFS from nbr avoiding a.
        let mut seen = vec![false; topo.num_ads()];
        seen[a.index()] = true;
        seen[nbr.index()] = true;
        let mut queue = std::collections::VecDeque::from([nbr]);
        let mut ok = false;
        while let Some(cur) = queue.pop_front() {
            if cur == b {
                ok = true;
                break;
            }
            for (next, _) in topo.neighbors(cur) {
                if !seen[next.index()] {
                    seen[next.index()] = true;
                    queue.push_back(next);
                }
            }
        }
        if ok {
            count += 1;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{connected_components, is_connected};
    use crate::generate::{clique, grid, line, ring, star, HierarchyConfig};

    /// Brute-force articulation check: remove each AD (fail its links)
    /// and count components among the rest.
    fn articulation_bruteforce(topo: &Topology) -> Vec<AdId> {
        let base_components = {
            let comp = connected_components(topo);
            comp.iter().max().map(|&m| m + 1).unwrap_or(0)
        };
        let mut out = Vec::new();
        for ad in topo.ad_ids() {
            let mut t = topo.clone();
            let links: Vec<_> = t.all_neighbors(ad).map(|(_, l)| l).collect();
            for l in links {
                t.set_link_up(l, false);
            }
            let comp = connected_components(&t);
            // Count components ignoring the isolated `ad` itself.
            let mut ids: Vec<u32> = topo
                .ad_ids()
                .filter(|&x| x != ad)
                .map(|x| comp[x.index()])
                .collect();
            ids.sort_unstable();
            ids.dedup();
            if ids.len() as u32 > base_components {
                out.push(ad);
            }
        }
        out
    }

    #[test]
    fn line_interior_ads_are_articulation_points() {
        let t = line(5);
        assert_eq!(articulation_ads(&t), vec![AdId(1), AdId(2), AdId(3)]);
    }

    #[test]
    fn ring_and_clique_have_none() {
        assert!(articulation_ads(&ring(8)).is_empty());
        assert!(articulation_ads(&clique(5)).is_empty());
        assert!(articulation_ads(&grid(3, 3)).is_empty());
    }

    #[test]
    fn star_hub_is_the_articulation_point() {
        let t = star(6);
        assert_eq!(articulation_ads(&t), vec![AdId(0)]);
    }

    #[test]
    fn matches_bruteforce_on_generated_internets() {
        for seed in [1u64, 2, 3, 4] {
            let t = HierarchyConfig {
                backbones: 1,
                regionals_per_backbone: 2,
                metros_per_regional: 2,
                campuses_per_metro: 2,
                lateral_prob: 0.3,
                bypass_prob: 0.2,
                multihome_prob: 0.3,
                seed,
            }
            .generate();
            assert!(is_connected(&t));
            let fast = articulation_ads(&t);
            let slow = articulation_bruteforce(&t);
            assert_eq!(fast, slow, "seed {seed}");
        }
    }

    #[test]
    fn multihoming_reduces_articulation_points() {
        let none = HierarchyConfig {
            lateral_prob: 0.0,
            bypass_prob: 0.0,
            multihome_prob: 0.0,
            seed: 5,
            ..HierarchyConfig::default()
        }
        .generate();
        let lots = HierarchyConfig {
            lateral_prob: 0.4,
            bypass_prob: 0.3,
            multihome_prob: 0.5,
            seed: 5,
            ..HierarchyConfig::default()
        }
        .generate();
        assert!(
            articulation_ads(&lots).len() < articulation_ads(&none).len(),
            "redundant links should remove single points of failure"
        );
    }

    #[test]
    fn degree_statistics() {
        let s = degree_stats(&star(5));
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 4);
        assert!((s.mean - 8.0 / 5.0).abs() < 1e-9);
        let r = degree_stats(&ring(7));
        assert_eq!((r.min, r.max), (2, 2));
    }

    #[test]
    fn diversity_counts_independent_egresses() {
        // Multi-homed stub on two providers joined by a backbone.
        let t = ring(4); // 0-1-2-3-0
        assert_eq!(egress_diversity(&t, AdId(0), AdId(2)), 2);
        let l = line(3);
        assert_eq!(egress_diversity(&l, AdId(0), AdId(2)), 1);
        assert_eq!(egress_diversity(&l, AdId(0), AdId(0)), 0);
        // Adjacent pair still counts the direct link.
        assert_eq!(egress_diversity(&l, AdId(0), AdId(1)), 1);
    }
}
