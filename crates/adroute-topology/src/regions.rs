//! Region partitioning for parallel simulation.
//!
//! Conservative parallel discrete-event execution partitions the ADs into
//! contiguous id ranges ("regions"). Each region advances independently
//! inside a time window bounded by the **lookahead**: the minimum
//! propagation delay of any link crossing a region boundary. No message
//! sent during a window can arrive in another region before the window
//! ends, so regions cannot causally interact within it — the classic
//! conservative-synchronization argument (Chandy/Misra; see also the
//! distributed BGP simulation feasibility study this design follows).

use crate::graph::Topology;
use crate::ids::AdId;
use std::ops::Range;

/// A partition of AD ids into contiguous regions.
#[derive(Clone, Debug)]
pub struct RegionMap {
    /// Region `r` covers AD indices `starts[r] .. starts[r + 1]`.
    starts: Vec<u32>,
}

impl RegionMap {
    /// Splits `num_ads` ADs into `num_regions` contiguous, balanced
    /// ranges. The region count is clamped to `[1, num_ads]` (an empty
    /// topology yields one empty region).
    pub fn contiguous(num_ads: usize, num_regions: usize) -> RegionMap {
        let n = num_regions.clamp(1, num_ads.max(1));
        let base = num_ads / n;
        let extra = num_ads % n;
        let mut starts = Vec::with_capacity(n + 1);
        let mut at = 0usize;
        starts.push(0);
        for r in 0..n {
            at += base + usize::from(r < extra);
            starts.push(at as u32);
        }
        RegionMap { starts }
    }

    /// Number of regions.
    pub fn num_regions(&self) -> usize {
        self.starts.len() - 1
    }

    /// The region containing `ad`.
    pub fn region_of(&self, ad: AdId) -> usize {
        // partition_point: first start strictly greater than ad.0, minus 1.
        self.starts.partition_point(|&s| s <= ad.0) - 1
    }

    /// The AD-index range of region `r`.
    pub fn range(&self, r: usize) -> Range<usize> {
        self.starts[r] as usize..self.starts[r + 1] as usize
    }
}

/// The conservative lookahead of a partition: the minimum `delay_us` over
/// links whose endpoints lie in different regions, or `None` when no link
/// crosses a boundary (regions are then fully independent). Link up/down
/// state is ignored — a failed link can come back mid-run, and lookahead
/// must hold for the whole run.
pub fn min_cross_region_delay(topo: &Topology, map: &RegionMap) -> Option<u64> {
    topo.links()
        .filter(|l| map.region_of(l.a) != map.region_of(l.b))
        .map(|l| l.delay_us)
        .min()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::line;
    use crate::ids::LinkId;

    #[test]
    fn contiguous_partition_is_balanced_and_total() {
        let map = RegionMap::contiguous(10, 3);
        assert_eq!(map.num_regions(), 3);
        assert_eq!(map.range(0), 0..4);
        assert_eq!(map.range(1), 4..7);
        assert_eq!(map.range(2), 7..10);
        for ad in 0..10u32 {
            let r = map.region_of(AdId(ad));
            assert!(map.range(r).contains(&(ad as usize)), "AD{ad} region {r}");
        }
    }

    #[test]
    fn region_count_is_clamped() {
        assert_eq!(RegionMap::contiguous(3, 8).num_regions(), 3);
        assert_eq!(RegionMap::contiguous(3, 0).num_regions(), 1);
        assert_eq!(RegionMap::contiguous(0, 4).num_regions(), 1);
        assert_eq!(RegionMap::contiguous(0, 4).range(0), 0..0);
    }

    #[test]
    fn lookahead_is_min_cross_delay() {
        let mut topo = line(4); // links 0-1, 1-2, 2-3, default delay 1000us
        let map = RegionMap::contiguous(4, 2); // regions {0,1} {2,3}
        topo.set_delay(LinkId(1), 250); // the only crossing link (1-2)
        topo.set_delay(LinkId(0), 10); // intra-region: ignored
        assert_eq!(min_cross_region_delay(&topo, &map), Some(250));
        // Single region: nothing crosses.
        let one = RegionMap::contiguous(4, 1);
        assert_eq!(min_cross_region_delay(&topo, &one), None);
    }
}
