//! ASCII rendering of internets and routes, for terminals and docs.
//!
//! [`render_tree`] draws the hierarchy (children indented under their
//! hierarchical parents, non-tree links annotated inline), and
//! [`render_path`] draws a route with each AD's level — which makes
//! valley-freedom visible at a glance.

use std::fmt::Write as _;

use crate::graph::Topology;
use crate::ids::{AdId, LinkKind};

/// Renders the hierarchy as an indented tree.
///
/// Every AD appears exactly once, under its first (lowest-id) hierarchical
/// parent; additional hierarchical parents, lateral links and bypass links
/// are annotated on the child's line. Deterministic output.
pub fn render_tree(topo: &Topology) -> String {
    let n = topo.num_ads();
    // parent[i] = first hierarchical neighbor with a higher level.
    let mut parent: Vec<Option<AdId>> = vec![None; n];
    for ad in topo.ad_ids() {
        let me = topo.ad(ad);
        parent[ad.index()] = topo
            .all_neighbors(ad)
            .filter(|&(nbr, l)| {
                topo.link(l).kind == LinkKind::Hierarchical && topo.ad(nbr).level > me.level
            })
            .map(|(nbr, _)| nbr)
            .min();
    }
    let mut children: Vec<Vec<AdId>> = vec![Vec::new(); n];
    let mut roots = Vec::new();
    for ad in topo.ad_ids() {
        match parent[ad.index()] {
            Some(p) => children[p.index()].push(ad),
            None => roots.push(ad),
        }
    }

    fn annotations(topo: &Topology, ad: AdId, parent: Option<AdId>) -> String {
        let mut notes = Vec::new();
        for (nbr, l) in topo.all_neighbors(ad) {
            let link = topo.link(l);
            let dead = if link.up { "" } else { " (down)" };
            match link.kind {
                LinkKind::Lateral => notes.push(format!("~{nbr}{dead}")),
                LinkKind::Bypass => notes.push(format!("^{nbr}{dead}")),
                LinkKind::Hierarchical => {
                    // Extra hierarchical parents beyond the tree edge.
                    if topo.ad(nbr).level > topo.ad(ad).level && Some(nbr) != parent {
                        notes.push(format!("+{nbr}{dead}"));
                    }
                }
            }
        }
        if notes.is_empty() {
            String::new()
        } else {
            format!("  [{}]", notes.join(" "))
        }
    }

    fn rec(
        topo: &Topology,
        out: &mut String,
        ad: AdId,
        parent: Option<AdId>,
        children: &[Vec<AdId>],
        depth: usize,
    ) {
        let a = topo.ad(ad);
        let _ = writeln!(
            out,
            "{}{} ({} {}){}",
            "  ".repeat(depth),
            ad,
            a.level,
            a.role,
            annotations(topo, ad, parent)
        );
        for &c in &children[ad.index()] {
            rec(topo, out, c, Some(ad), children, depth + 1);
        }
    }

    let mut out = String::new();
    for r in roots {
        rec(topo, &mut out, r, None, &children, 0);
    }
    out.push_str("legend: ~lateral  ^bypass  +extra hierarchical parent\n");
    out
}

/// Renders a path with levels, e.g.
/// `AD4(campus) -> AD1(regional) -> AD0(backbone) -> AD5(campus)`.
pub fn render_path(topo: &Topology, path: &[AdId]) -> String {
    path.iter()
        .map(|&a| format!("{a}({})", topo.ad(a).level))
        .collect::<Vec<_>>()
        .join(" -> ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::HierarchyConfig;
    use crate::graph::make_ad;
    use crate::ids::AdLevel;

    #[test]
    fn tree_lists_every_ad_once() {
        let topo = HierarchyConfig::figure1().generate();
        let text = render_tree(&topo);
        for ad in topo.ad_ids() {
            let needle = format!("{ad} (");
            assert_eq!(
                text.matches(&needle).count(),
                1,
                "{ad} should appear exactly once:\n{text}"
            );
        }
        assert!(text.contains("legend:"));
    }

    #[test]
    fn tree_annotates_non_tree_links() {
        // R(0) - M(1) - C(2), plus bypass C-R and a lateral metro M(3).
        let ads = vec![
            make_ad(0, AdLevel::Regional),
            make_ad(1, AdLevel::Metro),
            make_ad(2, AdLevel::Campus),
            make_ad(3, AdLevel::Metro),
        ];
        let mut topo = Topology::new(
            ads,
            &[
                (AdId(0), AdId(1), 1),
                (AdId(1), AdId(2), 1),
                (AdId(0), AdId(2), 1), // bypass
                (AdId(1), AdId(3), 1), // lateral
            ],
        );
        topo.reclassify_roles();
        let text = render_tree(&topo);
        assert!(text.contains("^AD0"), "bypass annotation missing:\n{text}");
        assert!(text.contains("~AD3"), "lateral annotation missing:\n{text}");
        // Indentation: regional under backbone, campus under regional.
        assert!(text.contains("\n  AD1 "), "{text}");
        assert!(text.contains("\n    AD2 "), "{text}");
    }

    #[test]
    fn down_links_marked() {
        let topo = {
            let ads = vec![make_ad(0, AdLevel::Regional), make_ad(1, AdLevel::Regional)];
            let mut t = Topology::new(ads, &[(AdId(0), AdId(1), 1)]);
            t.set_link_up(crate::ids::LinkId(0), false);
            t
        };
        let text = render_tree(&topo);
        assert!(text.contains("(down)"), "{text}");
    }

    #[test]
    fn path_rendering() {
        let topo = HierarchyConfig::figure1().generate();
        let p = [AdId(0), AdId(1)];
        let s = render_path(&topo, &p);
        assert!(s.contains("AD0(backbone)") || s.contains("AD0("), "{s}");
        assert!(s.contains(" -> "));
    }
}
