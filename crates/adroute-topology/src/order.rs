//! The NIST/ECMA global partial ordering of ADs (paper Section 5.1.1).
//!
//! The ECMA proposal avoids distance-vector looping and count-to-infinity by
//! imposing a *partial ordering* on all ADs, coordinated by a central
//! authority. Every inter-AD link is labelled **up** or **down** according
//! to the endpoints' positions in the ordering, and forwarding obeys the
//! rule: *once a packet traverses a down link, it cannot traverse another up
//! link*. Routes in distance-vector updates are marked with the kinds of
//! link they traversed so this rule can be enforced during both route
//! distribution and forwarding.
//!
//! Here the ordering is realized as a total rank per AD (a linear extension
//! of the intended partial order): level-major, id-minor by default, which
//! mirrors the paper's observation that the hierarchy itself induces the
//! natural ordering. Custom ranks can express policy — that is exactly the
//! (limited) policy mechanism of the Section 5.1 design point, and the
//! `adroute-policy::ordering` module measures how much policy a single
//! ordering can express.

use crate::graph::Topology;
use crate::ids::{AdId, LinkId};

/// Direction of a link traversal relative to the partial order.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LinkDirection {
    /// Toward a higher-ranked AD.
    Up,
    /// Toward a lower-ranked AD.
    Down,
}

/// A global ordering of ADs: `rank[ad]` is the AD's position.
///
/// Links between ADs of *equal* rank are disambiguated by AD id, so every
/// directed traversal is unambiguously up or down (the ordering is a linear
/// extension of the partial order the administrators negotiated).
#[derive(Clone, Debug)]
pub struct PartialOrder {
    rank: Vec<u32>,
}

impl PartialOrder {
    /// The natural hierarchy ordering: rank = level-major, id-minor.
    /// Backbones rank highest.
    pub fn from_levels(topo: &Topology) -> PartialOrder {
        let rank = topo.ads().map(|ad| u32::from(ad.level.rank())).collect();
        PartialOrder { rank }
    }

    /// An ordering from explicit per-AD ranks.
    ///
    /// # Panics
    /// Panics if `rank.len() != topo.num_ads()`.
    pub fn from_ranks(topo: &Topology, rank: Vec<u32>) -> PartialOrder {
        assert_eq!(rank.len(), topo.num_ads());
        PartialOrder { rank }
    }

    /// The rank of `ad`.
    #[inline]
    pub fn rank(&self, ad: AdId) -> u32 {
        self.rank[ad.index()]
    }

    /// Direction of traversing from `from` to `to`.
    ///
    /// Equal ranks are tie-broken by AD id (toward the higher id is "up"),
    /// making the order total and every traversal well-defined.
    #[inline]
    pub fn direction(&self, from: AdId, to: AdId) -> LinkDirection {
        let (rf, rt) = (self.rank(from), self.rank(to));
        if rt > rf || (rt == rf && to > from) {
            LinkDirection::Up
        } else {
            LinkDirection::Down
        }
    }

    /// Direction of traversing `link` starting at endpoint `from`.
    pub fn link_direction(&self, topo: &Topology, link: LinkId, from: AdId) -> LinkDirection {
        let l = topo.link(link);
        self.direction(from, l.other(from))
    }

    /// Whether a path obeys the up/down ("valley-free") rule: once a down
    /// link is traversed, no up link may follow.
    pub fn is_valley_free(&self, path: &[AdId]) -> bool {
        let mut gone_down = false;
        for w in path.windows(2) {
            match self.direction(w[0], w[1]) {
                LinkDirection::Up => {
                    if gone_down {
                        return false;
                    }
                }
                LinkDirection::Down => gone_down = true,
            }
        }
        true
    }

    /// Whether a valley-free path from `src` to `dst` exists over
    /// operational links: a two-phase BFS (up phase then down phase).
    ///
    /// This is the *reachability* ECMA can offer at best; contrast with the
    /// unconstrained reachability of link-state architectures.
    pub fn valley_free_reachable(&self, topo: &Topology, src: AdId, dst: AdId) -> bool {
        self.valley_free_path(topo, src, dst).is_some()
    }

    /// Finds a shortest (by hops) valley-free path, if any.
    ///
    /// Search state is `(ad, phase)` where phase 0 = still allowed to go up,
    /// phase 1 = has gone down. Deterministic BFS.
    pub fn valley_free_path(&self, topo: &Topology, src: AdId, dst: AdId) -> Option<Vec<AdId>> {
        if src == dst {
            return Some(vec![src]);
        }
        let n = topo.num_ads();
        // parent[state] = (ad, phase) predecessor; state = ad*2 + phase.
        let mut parent: Vec<Option<(AdId, u8)>> = vec![None; n * 2];
        let mut visited = vec![false; n * 2];
        let mut queue = std::collections::VecDeque::new();
        visited[src.index() * 2] = true;
        queue.push_back((src, 0u8));
        while let Some((ad, phase)) = queue.pop_front() {
            for (nbr, _) in topo.neighbors(ad) {
                let dir = self.direction(ad, nbr);
                let nphase = match dir {
                    LinkDirection::Up => {
                        if phase == 1 {
                            continue; // up after down: forbidden
                        }
                        0
                    }
                    LinkDirection::Down => 1,
                };
                let state = nbr.index() * 2 + nphase as usize;
                if !visited[state] {
                    visited[state] = true;
                    parent[state] = Some((ad, phase));
                    if nbr == dst {
                        // Reconstruct.
                        let mut path = vec![nbr];
                        let mut cur = (ad, phase);
                        loop {
                            path.push(cur.0);
                            if cur.0 == src && cur.1 == 0 {
                                break;
                            }
                            cur = parent[cur.0.index() * 2 + cur.1 as usize]
                                .expect("parent chain broken");
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back((nbr, nphase));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{line, HierarchyConfig};
    use crate::graph::{make_ad, Topology};
    use crate::ids::AdLevel;

    /// Backbone B(0); regionals R1(1), R2(2); campuses C1(3) under R1,
    /// C2(4) under R2. Lateral R1-R2.
    fn two_regions() -> Topology {
        let ads = vec![
            make_ad(0, AdLevel::Backbone),
            make_ad(1, AdLevel::Regional),
            make_ad(2, AdLevel::Regional),
            make_ad(3, AdLevel::Campus),
            make_ad(4, AdLevel::Campus),
        ];
        Topology::new(
            ads,
            &[
                (AdId(0), AdId(1), 1),
                (AdId(0), AdId(2), 1),
                (AdId(1), AdId(2), 1),
                (AdId(1), AdId(3), 1),
                (AdId(2), AdId(4), 1),
            ],
        )
    }

    #[test]
    fn directions_follow_levels() {
        let t = two_regions();
        let po = PartialOrder::from_levels(&t);
        assert_eq!(po.direction(AdId(3), AdId(1)), LinkDirection::Up);
        assert_eq!(po.direction(AdId(1), AdId(3)), LinkDirection::Down);
        assert_eq!(po.direction(AdId(1), AdId(0)), LinkDirection::Up);
        // Equal rank: tie-break by id.
        assert_eq!(po.direction(AdId(1), AdId(2)), LinkDirection::Up);
        assert_eq!(po.direction(AdId(2), AdId(1)), LinkDirection::Down);
    }

    #[test]
    fn valley_free_accepts_hierarchical_routes() {
        let t = two_regions();
        let po = PartialOrder::from_levels(&t);
        // C1 up to R1, up to B, down to R2, down to C2: valley-free.
        assert!(po.is_valley_free(&[AdId(3), AdId(1), AdId(0), AdId(2), AdId(4)]));
        // C1 up to R1, lateral (up, id-tiebreak) to R2, down to C2: also ok.
        assert!(po.is_valley_free(&[AdId(3), AdId(1), AdId(2), AdId(4)]));
    }

    #[test]
    fn valley_free_rejects_valleys() {
        let t = two_regions();
        let po = PartialOrder::from_levels(&t);
        // R2 down to C2? no link C2 up again... construct a valley:
        // B down to R1, down to C1 — fine; but R1 down to C1 then C1 up
        // anywhere is a valley:
        assert!(!po.is_valley_free(&[AdId(0), AdId(1), AdId(3), AdId(1)]));
        // down (R2->R1 by tiebreak) then up (R1->B) is a valley:
        assert!(!po.is_valley_free(&[AdId(2), AdId(1), AdId(0)]));
    }

    #[test]
    fn valley_free_path_search_finds_route() {
        let t = two_regions();
        let po = PartialOrder::from_levels(&t);
        let p = po.valley_free_path(&t, AdId(3), AdId(4)).unwrap();
        assert!(po.is_valley_free(&p));
        assert!(t.is_simple_path(&p));
        assert_eq!(p.first(), Some(&AdId(3)));
        assert_eq!(p.last(), Some(&AdId(4)));
    }

    #[test]
    fn valley_free_search_respects_failures() {
        let mut t = two_regions();
        let po = PartialOrder::from_levels(&t);
        // Cut both R1's upward/lateral options; C1 can then reach nothing
        // beyond R1's subtree except through B.
        let l = t.link_between(AdId(1), AdId(2)).unwrap();
        t.set_link_up(l, false);
        let p = po.valley_free_path(&t, AdId(3), AdId(4)).unwrap();
        assert_eq!(p, vec![AdId(3), AdId(1), AdId(0), AdId(2), AdId(4)]);
        let l2 = t.link_between(AdId(0), AdId(2)).unwrap();
        t.set_link_up(l2, false);
        assert!(po.valley_free_path(&t, AdId(3), AdId(4)).is_none());
        assert!(!po.valley_free_reachable(&t, AdId(3), AdId(4)));
    }

    #[test]
    fn custom_ranks_change_directions() {
        let t = line(3);
        let po = PartialOrder::from_ranks(&t, vec![5, 1, 5]);
        // 0 -> 1 is down; 1 -> 2 is up: that is a valley.
        assert!(!po.is_valley_free(&[AdId(0), AdId(1), AdId(2)]));
        assert!(po.valley_free_path(&t, AdId(0), AdId(2)).is_none());
        assert_eq!(po.rank(AdId(1)), 1);
    }

    #[test]
    fn valley_free_on_generated_hierarchy() {
        let t = HierarchyConfig::default().generate();
        let po = PartialOrder::from_levels(&t);
        // Every campus should reach every other campus valley-freely in a
        // connected hierarchy (up to the top, across, and down).
        let campuses: Vec<AdId> = t
            .ads()
            .filter(|a| a.level == AdLevel::Campus)
            .map(|a| a.id)
            .take(6)
            .collect();
        for &a in &campuses {
            for &b in &campuses {
                assert!(po.valley_free_reachable(&t, a, b), "{a} !-> {b}");
            }
        }
    }

    #[test]
    fn trivial_path() {
        let t = line(2);
        let po = PartialOrder::from_levels(&t);
        assert_eq!(
            po.valley_free_path(&t, AdId(0), AdId(0)).unwrap(),
            vec![AdId(0)]
        );
        assert!(po.is_valley_free(&[AdId(0)]));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::generate::HierarchyConfig;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Any path the valley-free search returns is simple, valley-free,
        /// and endpoint-correct; and the search agrees with reachability.
        #[test]
        fn valley_free_search_is_sound(seed in 0u64..500, s in 0u32..30, d in 0u32..30) {
            let topo = HierarchyConfig { seed, ..HierarchyConfig::figure1() }.generate();
            let n = topo.num_ads() as u32;
            let (s, d) = (AdId(s % n), AdId(d % n));
            let po = PartialOrder::from_levels(&topo);
            match po.valley_free_path(&topo, s, d) {
                Some(p) => {
                    prop_assert!(po.is_valley_free(&p));
                    prop_assert_eq!(p.first(), Some(&s));
                    prop_assert_eq!(p.last(), Some(&d));
                    prop_assert!(p.len() == 1 || topo.is_simple_path(&p));
                    prop_assert!(po.valley_free_reachable(&topo, s, d));
                }
                None => prop_assert!(!po.valley_free_reachable(&topo, s, d)),
            }
        }

        /// Direction is antisymmetric: exactly one of a->b / b->a is up.
        #[test]
        fn direction_antisymmetric(seed in 0u64..200, a in 0u32..30, b in 0u32..30) {
            let topo = HierarchyConfig { seed, ..HierarchyConfig::figure1() }.generate();
            let n = topo.num_ads() as u32;
            let (a, b) = (AdId(a % n), AdId(b % n));
            if a != b {
                let po = PartialOrder::from_levels(&topo);
                let ab = po.direction(a, b) == LinkDirection::Up;
                let ba = po.direction(b, a) == LinkDirection::Up;
                prop_assert_ne!(ab, ba);
            }
        }

        /// Generated hierarchies are connected and valley-free-connected
        /// from any campus to any campus.
        #[test]
        fn hierarchies_connected(seed in 0u64..200) {
            let topo = HierarchyConfig { seed, ..HierarchyConfig::figure1() }.generate();
            prop_assert!(crate::algo::is_connected(&topo));
        }
    }
}
