//! The link-state, hop-by-hop design point with explicit policy terms
//! (paper Section 5.3).
//!
//! Policy-bearing LSAs are flooded, so every AD holds the complete
//! topology-and-policy view and **can** discover any legal route. But
//! forwarding is still hop-by-hop: to stay consistent (and loop-free),
//! every AD on a path must repeat the *same* policy-constrained route
//! computation the source performed — "an AD potentially must compute a
//! separate spanning tree for each potential source of traffic", and all
//! ADs "must be aware of policy related criteria used by the source",
//! which is why per-source criteria cannot be private here.
//!
//! The implementation makes that burden measurable: each router resolves a
//! flow by running the full policy-constrained search *from the flow's
//! source* over its own database view, caching the result per traffic
//! class. [`LsHbhRouter::route_computations`] counts searches and
//! [`LsHbhRouter::fib_entries`] the per-class state — experiment E5's two
//! curves. The transit ADs of the ORWG architecture (`adroute-core`) do
//! neither; that contrast is the paper's central argument for source
//! routing.

use std::collections::HashMap;

use adroute_policy::{legality, FlowSpec, PolicyDb, TransitPolicy};
use adroute_sim::{Ctx, Engine, MisbehaviorModel, MisbehaviorSpec, Protocol};
use adroute_topology::{AdId, AdLevel, LinkId, Topology};

use crate::forwarding::DataPlane;
use crate::linkstate::{FloodMsg, Flooder};

/// Protocol configuration: the policies each AD will advertise in its
/// LSAs, and the levels used in reconstruction.
#[derive(Clone, Debug)]
pub struct LsHbh {
    /// Ground-truth per-AD policies. Each router reads **only its own**
    /// entry at origination time; everything else it learns by flooding.
    pub policies: PolicyDb,
    /// Hierarchy level per AD, advertised in LSAs.
    pub levels: Vec<AdLevel>,
    /// Byzantine misbehavior assignments. An AD tagged
    /// [`MisbehaviorModel::LsaReplay`] re-floods its *stale* stored copy
    /// of another origin's LSA under an inflated sequence number whenever
    /// a fresh one arrives — the classic replay-with-seq-abuse attack.
    /// The origin's self-originated-LSA ghost rule is both the detection
    /// signal (`ls_seq_jump`) and the cure (re-origination supersedes the
    /// forgery everywhere).
    pub misbehavior: MisbehaviorSpec,
}

impl LsHbh {
    /// Builds the configuration from a topology and its policies.
    pub fn new(topo: &Topology, policies: PolicyDb) -> LsHbh {
        LsHbh {
            policies,
            levels: topo.ads().map(|a| a.level).collect(),
            misbehavior: MisbehaviorSpec::default(),
        }
    }
}

/// Per-AD router state: flooding plus the lazily filled per-class FIB.
#[derive(Clone, Debug)]
pub struct LsHbhRouter {
    me: AdId,
    /// Flooding machinery and the local database copy.
    pub flooder: Flooder,
    /// Cached reconstructed view, keyed by database version.
    view: Option<(u64, Topology, PolicyDb)>,
    /// Per-traffic-class forwarding cache: the flow's full class identity
    /// maps to the computed next hop (None = no legal route).
    fib: HashMap<FlowSpec, Option<AdId>>,
    /// Policy-constrained route computations performed (E5 measure).
    pub route_computations: u64,
    /// Remaining LSA-replay forgeries this router may emit. Nonzero only
    /// for ADs tagged [`MisbehaviorModel::LsaReplay`]; bounded because
    /// every forgery provokes a higher-sequence re-origination from the
    /// victim, so an unbounded replayer would never let flooding quiesce.
    replay_budget: u32,
}

impl LsHbhRouter {
    /// Current number of cached per-class FIB entries (E5 measure).
    pub fn fib_entries(&self) -> usize {
        self.fib.len()
    }

    /// The router's reconstructed view, rebuilding if the database moved.
    fn refresh_view(&mut self) {
        let v = self.flooder.db.version();
        if self.view.as_ref().map(|(ver, _, _)| *ver) != Some(v) {
            let (topo, db) = self.flooder.db.view();
            self.view = Some((v, topo, db));
            self.fib.clear();
        }
    }

    /// Resolves the next hop for `flow` at this router, computing and
    /// caching if needed.
    pub fn resolve(&mut self, flow: &FlowSpec) -> Option<AdId> {
        self.refresh_view();
        if let Some(hit) = self.fib.get(flow) {
            return *hit;
        }
        let (_, topo, db) = self.view.as_ref().expect("view refreshed above");
        // Repeat the source's computation: the full legal route from the
        // flow's *source*, then take our successor on it. Identical
        // databases and a deterministic algorithm make this consistent
        // across the path — the consistency requirement of Section 5.3.
        self.route_computations += 1;
        let next = legality::legal_route(topo, db, flow).and_then(|route| {
            route
                .path
                .iter()
                .position(|&a| a == self.me)
                .and_then(|i| route.path.get(i + 1).copied())
        });
        self.fib.insert(*flow, next);
        next
    }
}

impl Protocol for LsHbh {
    type Router = LsHbhRouter;
    type Msg = FloodMsg;

    fn make_router(&self, topo: &Topology, ad: AdId) -> LsHbhRouter {
        let replayer = self.misbehavior.model_of(ad) == Some(MisbehaviorModel::LsaReplay);
        LsHbhRouter {
            me: ad,
            flooder: Flooder::new(ad, topo.num_ads()),
            view: None,
            fib: HashMap::new(),
            route_computations: 0,
            replay_budget: if replayer { 4 } else { 0 },
        }
    }

    fn on_start(&self, r: &mut LsHbhRouter, ctx: &mut Ctx<'_, FloodMsg>) {
        let level = self.levels[r.me.index()];
        let policy: TransitPolicy = self.policies.policy(r.me).clone();
        r.flooder.originate(ctx, level, policy);
    }

    fn on_message(
        &self,
        r: &mut LsHbhRouter,
        ctx: &mut Ctx<'_, FloodMsg>,
        from: AdId,
        _link: LinkId,
        msg: FloodMsg,
    ) {
        // A replayer captures its *stale* stored copy of the origin's LSA
        // before the flooder overwrites it, then re-floods that stale
        // content under an inflated sequence number so honest routers
        // prefer the forgery over the genuine update.
        let stale = if r.replay_budget > 0 && msg.origin != r.me {
            r.flooder
                .db
                .get(msg.origin)
                .filter(|old| old.seq < msg.seq && old.links != msg.links)
                .cloned()
        } else {
            None
        };
        let incoming_seq = msg.seq;
        // The flooder emits its accept/duplicate record before forwarding
        // the LSA, so flood fan-out anchors to the acceptance in the
        // causal log.
        r.flooder.handle(ctx, from, msg);
        if let Some(mut forged) = stale {
            r.replay_budget -= 1;
            forged.seq = incoming_seq + 7;
            ctx.count("lsa_replay_forged", 1);
            for (nbr, _) in ctx.neighbors() {
                ctx.send(nbr, forged.clone());
            }
        }
    }

    fn on_link_event(
        &self,
        r: &mut LsHbhRouter,
        ctx: &mut Ctx<'_, FloodMsg>,
        _link: LinkId,
        neighbor: AdId,
        up: bool,
    ) {
        // Re-originate with the new adjacency list; flooding spreads it.
        let level = self.levels[r.me.index()];
        let policy = self.policies.policy(r.me).clone();
        r.flooder.originate(ctx, level, policy);
        if up {
            // Database exchange over the fresh adjacency: catch the
            // neighbor up on anything that happened while we were apart.
            r.flooder.resync(ctx, neighbor);
        }
    }

    fn msg_size(&self, msg: &FloodMsg) -> usize {
        msg.encoded_size()
    }
}

impl DataPlane for Engine<LsHbh> {
    type Mark = ();

    fn next_hop(
        &mut self,
        at: AdId,
        flow: &FlowSpec,
        _prev: Option<AdId>,
        _mark: &mut (),
    ) -> Option<AdId> {
        self.router_mut(at).resolve(flow)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forwarding::{audit_path, forward, sample_flows, ForwardOutcome};
    use adroute_policy::workload::PolicyWorkload;
    use adroute_policy::{PolicyAction, PolicyCondition};
    use adroute_topology::generate::{line, ring, HierarchyConfig};

    fn converge(topo: Topology, db: PolicyDb) -> Engine<LsHbh> {
        let proto = LsHbh::new(&topo, db);
        let mut e = Engine::new(topo, proto);
        e.run_to_quiescence();
        e
    }

    #[test]
    fn floods_full_database_everywhere() {
        let topo = ring(6);
        let e = converge(topo, PolicyDb::permissive(&ring(6)));
        for ad in e.topo().ad_ids() {
            assert_eq!(e.router(ad).flooder.db.len(), 6, "{ad} has partial db");
        }
    }

    #[test]
    fn delivers_policy_compliant_routes() {
        let topo = ring(6);
        let mut db = PolicyDb::permissive(&topo);
        db.set_policy(TransitPolicy::deny_all(AdId(1)));
        let mut e = converge(topo, db.clone());
        let topo = e.topo().clone();
        let f = FlowSpec::best_effort(AdId(0), AdId(2));
        let out = forward(&mut e, &topo, &f);
        let ForwardOutcome::Delivered { path } = &out else {
            panic!("{out:?}")
        };
        // Must route the long way (around AD1) and compliantly.
        assert!(!path[1..path.len() - 1].contains(&AdId(1)));
        assert!(audit_path(&topo, &db, &f, path).compliant());
    }

    #[test]
    fn finds_any_legal_route_like_the_oracle() {
        // The paper: this architecture "allows an AD to discover a valid
        // route if one in fact exists". Score availability = 1.0.
        let topo = HierarchyConfig::figure1().generate();
        let db = PolicyWorkload::default_mix(3).generate(&topo);
        let mut e = converge(topo.clone(), db.clone());
        let flows = sample_flows(&topo, 30, 5);
        let score = crate::forwarding::score_flows(&mut e, &topo, &db, &flows);
        assert_eq!(score.violating, 0, "LS-HBH must never violate policy");
        assert!(
            (score.availability() - 1.0).abs() < f64::EPSILON,
            "availability {} (found {}/{})",
            score.availability(),
            score.compliant_of_legal,
            score.legal_exists
        );
    }

    #[test]
    fn transit_burden_counts_computations() {
        let topo = line(5);
        let db = PolicyDb::permissive(&topo);
        let mut e = converge(topo, db);
        let topo = e.topo().clone();
        // Three distinct sources send to AD4; the transit AD3 must compute
        // once per source class.
        for src in [0u32, 1, 2] {
            let f = FlowSpec::best_effort(AdId(src), AdId(4));
            let out = forward(&mut e, &topo, &f);
            assert!(out.delivered());
        }
        let transit = e.router(AdId(3));
        assert_eq!(transit.route_computations, 3);
        assert_eq!(transit.fib_entries(), 3);
        // Repeating a flow hits the cache: no new computation.
        let f = FlowSpec::best_effort(AdId(0), AdId(4));
        let _ = forward(&mut e, &topo, &f);
        assert_eq!(e.router(AdId(3)).route_computations, 3);
    }

    #[test]
    fn source_specific_policy_multiplies_transit_state() {
        // AD2 on a line serves flows from many sources; each distinct
        // source is a distinct class — the spanning-tree replication of
        // Section 5.3.
        let topo = line(8);
        let db = PolicyDb::permissive(&topo);
        let mut e = converge(topo, db);
        let topo = e.topo().clone();
        for src in 0..6u32 {
            let f = FlowSpec::best_effort(AdId(src), AdId(7));
            let _ = forward(&mut e, &topo, &f);
        }
        assert_eq!(e.router(AdId(6)).fib_entries(), 6);
    }

    #[test]
    fn reconverges_after_failure_and_flushes_fibs() {
        let topo = ring(5);
        let db = PolicyDb::permissive(&topo);
        let mut e = converge(topo, db);
        let topo0 = e.topo().clone();
        let f = FlowSpec::best_effort(AdId(0), AdId(2));
        let out = forward(&mut e, &topo0, &f);
        assert_eq!(out.path(), &[AdId(0), AdId(1), AdId(2)]);
        let l = e.topo().link_between(AdId(0), AdId(1)).unwrap();
        let t = e.now().plus_us(1000);
        e.schedule_link_change(l, false, t);
        e.run_to_quiescence();
        let topo1 = e.topo().clone();
        let out = forward(&mut e, &topo1, &f);
        let ForwardOutcome::Delivered { path } = &out else {
            panic!("{out:?}")
        };
        assert_eq!(path, &vec![AdId(0), AdId(4), AdId(3), AdId(2)]);
    }

    #[test]
    fn prev_conditioned_policy_is_honored() {
        // AD1 on a ring accepts transit only from prev AD3.
        let topo = ring(4);
        let mut db = PolicyDb::permissive(&topo);
        let mut p1 = TransitPolicy::deny_all(AdId(1));
        p1.push_term(
            vec![PolicyCondition::PrevIn(adroute_policy::AdSet::only([
                AdId(2),
            ]))],
            PolicyAction::Permit { cost: 0 },
        );
        db.set_policy(p1);
        let mut e = converge(topo, db.clone());
        let topo = e.topo().clone();
        // 0 -> 2: direct via AD1 is illegal (prev would be 0); go via 3.
        let f = FlowSpec::best_effort(AdId(0), AdId(2));
        let out = forward(&mut e, &topo, &f);
        let ForwardOutcome::Delivered { path } = &out else {
            panic!("{out:?}")
        };
        assert_eq!(path, &vec![AdId(0), AdId(3), AdId(2)]);
        assert!(audit_path(&topo, &db, &f, path).compliant());
    }

    #[test]
    fn partition_heal_resynchronizes_databases() {
        // Partition a line, change topology on one side during the
        // partition, then heal: the other side must learn about it via
        // the database exchange (plain flooding would never deliver it).
        let topo = line(5); // 0-1-2-3-4
        let db = PolicyDb::permissive(&topo);
        let mut e = converge(topo, db);
        let cut = e.topo().link_between(AdId(1), AdId(2)).unwrap();
        let right_cut = e.topo().link_between(AdId(3), AdId(4)).unwrap();
        let t = e.now().plus_us(1000);
        e.schedule_link_change(cut, false, t);
        // While partitioned, 3-4 fails AND recovers: the left side misses
        // both floods.
        e.schedule_link_change(right_cut, false, t.plus_us(2000));
        e.schedule_link_change(right_cut, true, t.plus_us(4000));
        e.run_to_quiescence();
        // Heal the partition.
        let t2 = e.now().plus_us(1000);
        e.schedule_link_change(cut, true, t2);
        e.run_to_quiescence();
        // AD0's view must now match ground truth exactly.
        let (view, _) = e.router(AdId(0)).flooder.db.view();
        assert_eq!(view.num_links(), 4, "AD0 missing links after heal");
        assert!(view.link_between(AdId(3), AdId(4)).is_some());
        assert!(e.stats.counter("ls_resync") > 0);
        // And the healed network routes end-to-end.
        let truth = e.topo().clone();
        let out = forward(&mut e, &truth, &FlowSpec::best_effort(AdId(0), AdId(4)));
        assert!(out.delivered(), "{out:?}");
    }

    #[test]
    fn flooding_overhead_counted() {
        let topo = ring(6);
        let e = converge(topo, PolicyDb::permissive(&ring(6)));
        // Every LSA crosses most links; duplicates are suppressed but
        // counted.
        assert!(e.stats.msgs_sent >= 6 * 5);
        assert!(e.stats.counter("flood_dup") > 0);
        assert!(e.stats.bytes_sent > 0);
    }

    #[test]
    fn lsa_replayer_is_detected_and_superseded() {
        let topo = ring(5);
        let db = PolicyDb::permissive(&topo);
        let mut proto = LsHbh::new(&topo, db);
        proto.misbehavior = MisbehaviorSpec::single(AdId(2), MisbehaviorModel::LsaReplay);
        let mut e = Engine::new(topo, proto);
        e.run_to_quiescence();
        // Fail a link: its endpoints re-originate, and the replayer at AD2
        // re-floods its stale pre-failure copies under inflated sequence
        // numbers.
        let l = e.topo().link_between(AdId(0), AdId(1)).unwrap();
        let t = e.now().plus_us(1000);
        e.schedule_link_change(l, false, t);
        e.run_to_quiescence();
        assert!(e.stats.counter("lsa_replay_forged") > 0, "never forged");
        // Detection: the victim's ghost rule fires on its own forged LSA.
        assert!(e.stats.counter("ls_seq_jump") > 0, "replay undetected");
        // Self-healing: the bounded replayer loses — every database ends
        // with AD0's genuine post-failure adjacency list (one link left).
        let truth = e.topo().clone();
        for ad in truth.ad_ids() {
            let lsa = e.router(ad).flooder.db.get(AdId(0)).unwrap();
            assert_eq!(lsa.links.len(), 1, "stale ghost survives at {ad}");
        }
        let out = forward(&mut e, &truth, &FlowSpec::best_effort(AdId(0), AdId(2)));
        assert!(out.delivered(), "{out:?}");
    }

    #[test]
    fn deterministic() {
        let run = || {
            let topo = ring(6);
            let mut e = Engine::new(topo, LsHbh::new(&ring(6), PolicyDb::permissive(&ring(6))));
            let t = e.run_to_quiescence();
            (t, e.stats.msgs_sent, e.stats.bytes_sent)
        };
        assert_eq!(run(), run());
    }
}
