//! The common data-plane harness.
//!
//! After a control plane converges, experiments push packets through the
//! network hop-by-hop and audit the result: was the packet delivered, did
//! it loop, did every transit AD's policy actually permit the traversal?
//! Comparing the outcome against the oracle
//! ([`adroute_policy::legality::legal_route`]) yields the route-availability
//! and policy-integrity numbers of the design-space experiments.

use adroute_policy::{legality, FlowSpec, PolicyDb};
use adroute_topology::{AdId, Topology};

/// A converged data plane: given a packet at AD `at` (arriving from
/// `prev`, `None` at the source), decide the next AD.
///
/// `Mark` is protocol-defined per-packet state carried in the packet
/// header — e.g. ECMA's "has traversed a down link" bit, or the ORWG
/// route handle. `next_hop` takes `&mut self` because hop-by-hop
/// link-state forwarders compute routes lazily and cache them.
pub trait DataPlane {
    /// Per-packet header state.
    type Mark: Default + Clone;

    /// The forwarding decision at `at`. Returns `None` when the protocol
    /// has no (willing) route — the packet is dropped.
    fn next_hop(
        &mut self,
        at: AdId,
        flow: &FlowSpec,
        prev: Option<AdId>,
        mark: &mut Self::Mark,
    ) -> Option<AdId>;
}

/// What happened to a forwarded packet.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ForwardOutcome {
    /// Delivered to the destination along `path`.
    Delivered {
        /// The complete AD path, source to destination.
        path: Vec<AdId>,
    },
    /// Dropped at the last AD of `path`: no next hop.
    NoRoute {
        /// Path up to and including the AD that dropped the packet.
        path: Vec<AdId>,
    },
    /// A forwarding loop was detected (an AD revisited).
    Loop {
        /// Path up to and including the first revisited AD.
        path: Vec<AdId>,
    },
}

impl ForwardOutcome {
    /// Whether the packet reached its destination.
    pub fn delivered(&self) -> bool {
        matches!(self, ForwardOutcome::Delivered { .. })
    }

    /// The traversed path regardless of outcome.
    pub fn path(&self) -> &[AdId] {
        match self {
            ForwardOutcome::Delivered { path }
            | ForwardOutcome::NoRoute { path }
            | ForwardOutcome::Loop { path } => path,
        }
    }
}

/// Drives one packet for `flow` from its source hop-by-hop until delivery,
/// drop, loop, or a hop budget of `2 * num_ads` (catching protocols that
/// wander without revisiting).
///
/// The hop from `a` to `b` is taken only if an operational link exists —
/// a data plane that names a non-neighbor is treated as dropping the
/// packet (defensive: none of the implementations should).
pub fn forward<D: DataPlane>(dp: &mut D, topo: &Topology, flow: &FlowSpec) -> ForwardOutcome {
    let mut path = vec![flow.src];
    if flow.src == flow.dst {
        return ForwardOutcome::Delivered { path };
    }
    let mut visited = vec![false; topo.num_ads()];
    visited[flow.src.index()] = true;
    let mut mark = D::Mark::default();
    let mut prev = None;
    let mut at = flow.src;
    let budget = 2 * topo.num_ads() + 2;
    for _ in 0..budget {
        let Some(next) = dp.next_hop(at, flow, prev, &mut mark) else {
            return ForwardOutcome::NoRoute { path };
        };
        let link_ok = topo
            .link_between(at, next)
            .map(|l| topo.link(l).up)
            .unwrap_or(false);
        if !link_ok {
            return ForwardOutcome::NoRoute { path };
        }
        path.push(next);
        if next == flow.dst {
            return ForwardOutcome::Delivered { path };
        }
        if visited[next.index()] {
            return ForwardOutcome::Loop { path };
        }
        visited[next.index()] = true;
        prev = Some(at);
        at = next;
    }
    // Budget exhausted without revisiting: report as a loop (pathological).
    ForwardOutcome::Loop { path }
}

/// Audit of a delivered path against ground-truth policy.
#[derive(Clone, Debug, Default)]
pub struct Audit {
    /// Transit ADs whose policy the path violates.
    pub violations: Vec<AdId>,
    /// Total cost if the path is legal.
    pub cost: Option<u64>,
}

impl Audit {
    /// Whether the path is fully policy-compliant.
    pub fn compliant(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Audits a complete path: which transit ADs' policies does it violate?
pub fn audit_path(topo: &Topology, db: &PolicyDb, flow: &FlowSpec, path: &[AdId]) -> Audit {
    let mut audit = Audit::default();
    if path.len() >= 3 {
        for i in 1..path.len() - 1 {
            if db
                .policy(path[i])
                .evaluate(flow, Some(path[i - 1]), Some(path[i + 1]))
                .is_none()
            {
                audit.violations.push(path[i]);
            }
        }
    }
    if audit.violations.is_empty() {
        audit.cost = legality::route_is_legal(topo, db, flow, path);
    }
    audit
}

/// Aggregated delivery/compliance/availability statistics over a set of
/// flows — the per-architecture row of the design-space experiments.
#[derive(Clone, Debug, Default)]
pub struct FlowScore {
    /// Flows attempted.
    pub flows: usize,
    /// Flows for which the oracle found a legal route.
    pub legal_exists: usize,
    /// Flows delivered by the protocol.
    pub delivered: usize,
    /// Delivered flows whose path violated some transit policy.
    pub violating: usize,
    /// Flows with a legal route that the protocol delivered compliantly.
    pub compliant_of_legal: usize,
    /// Forwarding loops observed.
    pub loops: usize,
    /// Sum of protocol path cost over flows where both protocol and
    /// oracle delivered compliantly (for stretch).
    pub cost_sum: u64,
    /// Sum of oracle cost over the same flows.
    pub oracle_cost_sum: u64,
}

impl FlowScore {
    /// Availability: of the flows with a legal route, the fraction the
    /// protocol delivered policy-compliantly. The paper's "no available
    /// route when in fact a legal route exists" measure.
    pub fn availability(&self) -> f64 {
        if self.legal_exists == 0 {
            return 1.0;
        }
        self.compliant_of_legal as f64 / self.legal_exists as f64
    }

    /// Fraction of delivered flows that violated policy (integrity
    /// failure).
    pub fn violation_rate(&self) -> f64 {
        if self.delivered == 0 {
            return 0.0;
        }
        self.violating as f64 / self.delivered as f64
    }

    /// Mean path-cost stretch vs the oracle on comparably-delivered flows.
    pub fn stretch(&self) -> f64 {
        if self.oracle_cost_sum == 0 {
            return 1.0;
        }
        self.cost_sum as f64 / self.oracle_cost_sum as f64
    }
}

/// Scores a data plane over a set of flows against the oracle.
pub fn score_flows<D: DataPlane>(
    dp: &mut D,
    topo: &Topology,
    db: &PolicyDb,
    flows: &[FlowSpec],
) -> FlowScore {
    let mut score = FlowScore {
        flows: flows.len(),
        ..FlowScore::default()
    };
    for flow in flows {
        let oracle = legality::legal_route(topo, db, flow);
        if oracle.is_some() {
            score.legal_exists += 1;
        }
        let outcome = forward(dp, topo, flow);
        match &outcome {
            ForwardOutcome::Delivered { path } => {
                score.delivered += 1;
                let audit = audit_path(topo, db, flow, path);
                if audit.compliant() {
                    if let Some(oracle) = &oracle {
                        score.compliant_of_legal += 1;
                        if let Some(cost) = audit.cost {
                            score.cost_sum += cost;
                            score.oracle_cost_sum += oracle.cost;
                        }
                    }
                } else {
                    score.violating += 1;
                }
            }
            ForwardOutcome::Loop { .. } => score.loops += 1,
            ForwardOutcome::NoRoute { .. } => {}
        }
    }
    score
}

/// One monitoring tick's worth of forwarding-plane probes: pushes every
/// flow through the data plane and translates the outcomes into
/// [`Observation`](adroute_sim::Observation)s for a
/// [`MonitorBank`](adroute_sim::MonitorBank) — the protocol-agnostic glue
/// between the four design-point data planes and the runtime safety
/// monitors. The caller closes the tick with
/// [`MonitorBank::end_tick`](adroute_sim::MonitorBank::end_tick).
///
/// Mapping:
/// - delivered → [`Observation::Delivered`] with the policy violators
///   from [`audit_path`] (the tripwire's evidence),
/// - looped → [`Observation::Looped`] with the repeating cycle,
///   `reachable` from the same oracle as drops (a loop toward an
///   unreachable destination is reconvergence churn, not misbehavior),
/// - dropped → [`Observation::Blackholed`], `reachable` taken from the
///   policy-legality oracle ([`legality::legal_route`]): a drop is only
///   suspicious when a policy-legal route exists right now. A
///   policy-honoring protocol refusing a policy-forbidden flow is thus
///   never accused — the false-positive discipline the monitors.rs
///   proptest battery enforces (each design point is paired with the
///   policy regime it actually honors).
pub fn observe_flows<D: DataPlane>(
    dp: &mut D,
    topo: &Topology,
    db: &PolicyDb,
    flows: &[FlowSpec],
    bank: &mut adroute_sim::MonitorBank,
) {
    use adroute_sim::Observation;
    for flow in flows {
        match forward(dp, topo, flow) {
            ForwardOutcome::Delivered { path } => {
                let audit = audit_path(topo, db, flow, &path);
                bank.observe(Observation::Delivered {
                    src: flow.src,
                    dst: flow.dst,
                    violators: audit.violations,
                });
            }
            ForwardOutcome::Loop { path } => {
                // The cycle is the suffix starting at the first visit of
                // the revisited AD (budget-exhaustion "loops" degrade to
                // the whole path).
                let last = *path.last().expect("loop path is never empty");
                let start = path.iter().position(|&a| a == last).unwrap_or(0);
                bank.observe(Observation::Looped {
                    src: flow.src,
                    dst: flow.dst,
                    cycle: path[start..path.len() - 1].to_vec(),
                    reachable: legality::legal_route(topo, db, flow).is_some(),
                });
            }
            ForwardOutcome::NoRoute { path } => {
                let at = *path.last().expect("drop path is never empty");
                bank.observe(Observation::Blackholed {
                    src: flow.src,
                    dst: flow.dst,
                    at,
                    reachable: legality::legal_route(topo, db, flow).is_some(),
                });
            }
        }
    }
}

/// Generates a deterministic sample of distinct-endpoint best-effort flows.
pub fn sample_flows(topo: &Topology, count: usize, seed: u64) -> Vec<FlowSpec> {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = topo.num_ads() as u32;
    let mut flows = Vec::with_capacity(count);
    if n < 2 {
        return flows;
    }
    while flows.len() < count {
        let s = AdId(rng.gen_range(0..n));
        let d = AdId(rng.gen_range(0..n));
        if s != d {
            flows.push(FlowSpec::best_effort(s, d));
        }
    }
    flows
}

/// Generates flows with **locality**: with probability `locality` the
/// destination lies within `radius` AD-hops of the source, otherwise it
/// is uniform. Models the paper's Section 1 observation that AD regions
/// "represent areas in which significant locality exists".
pub fn sample_flows_local(
    topo: &Topology,
    count: usize,
    locality: f64,
    radius: u32,
    seed: u64,
) -> Vec<FlowSpec> {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = topo.num_ads() as u32;
    let mut flows = Vec::with_capacity(count);
    if n < 2 {
        return flows;
    }
    while flows.len() < count {
        let s = AdId(rng.gen_range(0..n));
        let d = if rng.gen_bool(locality.clamp(0.0, 1.0)) {
            let (hops, _) = adroute_topology::algo::bfs_tree(topo, s);
            let near: Vec<AdId> = topo
                .ad_ids()
                .filter(|&x| x != s && hops[x.index()] <= radius)
                .collect();
            if near.is_empty() {
                continue;
            }
            near[rng.gen_range(0..near.len())]
        } else {
            AdId(rng.gen_range(0..n))
        };
        if s != d {
            flows.push(FlowSpec::best_effort(s, d));
        }
    }
    flows
}

#[cfg(test)]
mod tests {
    use super::*;
    use adroute_policy::TransitPolicy;
    use adroute_topology::generate::line;

    /// A static data plane from a fixed next-hop matrix.
    struct Table(Vec<Vec<Option<AdId>>>); // [at][dst]
    impl DataPlane for Table {
        type Mark = ();
        fn next_hop(
            &mut self,
            at: AdId,
            flow: &FlowSpec,
            _prev: Option<AdId>,
            _mark: &mut (),
        ) -> Option<AdId> {
            self.0[at.index()][flow.dst.index()]
        }
    }

    fn line_table(n: usize) -> Table {
        // Correct next hops on a line.
        let mut t = vec![vec![None; n]; n];
        for (at, row) in t.iter_mut().enumerate() {
            for (dst, cell) in row.iter_mut().enumerate() {
                if dst > at {
                    *cell = Some(AdId(at as u32 + 1));
                } else if dst < at {
                    *cell = Some(AdId(at as u32 - 1));
                }
            }
        }
        Table(t)
    }

    #[test]
    fn forward_delivers_on_correct_table() {
        let topo = line(4);
        let mut dp = line_table(4);
        let f = FlowSpec::best_effort(AdId(0), AdId(3));
        let out = forward(&mut dp, &topo, &f);
        assert!(out.delivered());
        assert_eq!(out.path(), &[AdId(0), AdId(1), AdId(2), AdId(3)]);
    }

    #[test]
    fn forward_detects_loop() {
        let topo = line(3);
        // 0 -> 1 -> 0 bounce.
        let mut t = vec![vec![None; 3]; 3];
        t[0][2] = Some(AdId(1));
        t[1][2] = Some(AdId(0));
        let mut dp = Table(t);
        let out = forward(&mut dp, &topo, &FlowSpec::best_effort(AdId(0), AdId(2)));
        assert!(matches!(out, ForwardOutcome::Loop { .. }));
    }

    #[test]
    fn forward_detects_no_route_and_dead_link() {
        let mut topo = line(3);
        let mut dp = line_table(3);
        let f = FlowSpec::best_effort(AdId(0), AdId(2));
        topo.set_link_up(adroute_topology::LinkId(1), false);
        let out = forward(&mut dp, &topo, &f);
        assert!(matches!(out, ForwardOutcome::NoRoute { .. }));
        // Table with a hole.
        dp.0[1][2] = None;
        let out2 = forward(&mut dp, &topo, &f);
        assert_eq!(
            out2,
            ForwardOutcome::NoRoute {
                path: vec![AdId(0), AdId(1)]
            }
        );
    }

    #[test]
    fn trivial_self_flow() {
        let topo = line(2);
        let mut dp = line_table(2);
        let out = forward(&mut dp, &topo, &FlowSpec::best_effort(AdId(0), AdId(0)));
        assert_eq!(
            out,
            ForwardOutcome::Delivered {
                path: vec![AdId(0)]
            }
        );
    }

    #[test]
    fn audit_flags_violations() {
        let topo = line(4);
        let mut db = PolicyDb::permissive(&topo);
        db.set_policy(TransitPolicy::deny_all(AdId(2)));
        let f = FlowSpec::best_effort(AdId(0), AdId(3));
        let path = [AdId(0), AdId(1), AdId(2), AdId(3)];
        let audit = audit_path(&topo, &db, &f, &path);
        assert!(!audit.compliant());
        assert_eq!(audit.violations, vec![AdId(2)]);
        assert_eq!(audit.cost, None);

        let db2 = PolicyDb::permissive(&topo);
        let audit2 = audit_path(&topo, &db2, &f, &path);
        assert!(audit2.compliant());
        assert_eq!(audit2.cost, Some(3));
    }

    #[test]
    fn score_flows_measures_violations_and_availability() {
        let topo = line(4);
        let mut db = PolicyDb::permissive(&topo);
        db.set_policy(TransitPolicy::deny_all(AdId(1)));
        let mut dp = line_table(4); // ignores policy => violates
        let flows = vec![
            FlowSpec::best_effort(AdId(0), AdId(3)), // no legal route, delivered violating
            FlowSpec::best_effort(AdId(2), AdId(3)), // legal (no transit), delivered
        ];
        let s = score_flows(&mut dp, &topo, &db, &flows);
        assert_eq!(s.flows, 2);
        assert_eq!(s.legal_exists, 1);
        assert_eq!(s.delivered, 2);
        assert_eq!(s.violating, 1);
        assert_eq!(s.compliant_of_legal, 1);
        assert!(s.violation_rate() > 0.0);
        assert_eq!(s.availability(), 1.0);
        assert_eq!(s.stretch(), 1.0);
    }

    #[test]
    fn sample_flows_deterministic_and_valid() {
        let topo = line(5);
        let a = sample_flows(&topo, 20, 9);
        let b = sample_flows(&topo, 20, 9);
        assert_eq!(a.len(), 20);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x, y);
            assert_ne!(x.src, x.dst);
        }
    }

    #[test]
    fn local_flows_stay_close() {
        let topo = line(20);
        let local = sample_flows_local(&topo, 60, 1.0, 2, 3);
        assert_eq!(local.len(), 60);
        for f in &local {
            let dist = (f.src.0 as i64 - f.dst.0 as i64).unsigned_abs();
            assert!(dist <= 2, "{f} too far for radius 2");
            assert_ne!(f.src, f.dst);
        }
        // locality 0 reduces to the uniform sampler's distribution family:
        // at least one long flow appears in a decent sample.
        let global = sample_flows_local(&topo, 60, 0.0, 2, 3);
        assert!(global
            .iter()
            .any(|f| (f.src.0 as i64 - f.dst.0 as i64).unsigned_abs() > 5));
        // Determinism.
        assert_eq!(
            sample_flows_local(&topo, 10, 0.5, 2, 7),
            sample_flows_local(&topo, 10, 0.5, 2, 7)
        );
    }
}
