//! The IDRP / BGP-2 design point: distance vector (path vector),
//! hop-by-hop, **explicit policy terms in routing updates** (paper
//! Section 5.2 / 5.2.1).
//!
//! Updates carry the **full AD path** (IDRP's loop-avoidance mechanism)
//! plus policy attributes: the QOS and user class a route applies to, and
//! a **distribution/source scope** — the set of source ADs permitted to
//! use the route, IDRP's vehicle for source-specific policy (the paper
//! notes BGP-2 lacks this; disable [`PathVector::scope_attrs`] to model
//! BGP-2). As updates propagate, each transit AD narrows the attributes
//! according to its own policy and may split one route into several
//! class-specific routes — which is precisely the paper's complaint:
//! "this effectively replicates the routing table per forwarding entity
//! for each QOS, UCI, source combination", measured by experiment E4.
//!
//! ## Policy conversion
//!
//! A transit AD's first-match-wins [`TransitPolicy`] must be converted
//! into advertisable per-class *offerings* at export time. With the
//! destination, previous AD, and next AD fixed (all known at export), the
//! conversion walks the terms in order, tracking the set of sources not
//! yet denied; each permit term yields an offering over the remaining
//! sources. The conversion is exact for the policy shapes the workload
//! generator emits (source-set denials; QOS/UCI/cone permits); two
//! documented approximations remain: (1) a deny term conditioned on
//! QOS/UCI narrows *all* later offerings' source scope (conservative —
//! may lose legal routes, never violates policy), and (2) a
//! class-conditioned permit does not shadow later terms for that class,
//! so a later broader offering may coexist (route selection then picks
//! the cheaper, which can differ from strict first-match costing).
//! Time-of-day conditions are evaluated at [`PathVector::eval_time`]:
//! hop-by-hop tables cannot re-evaluate per packet — a genuine limitation
//! of this design point versus source routing.

use std::collections::BTreeMap;

use adroute_policy::{
    AdSet, FlowSpec, PolicyAction, PolicyCondition, PolicyDb, QosClass, TimeOfDay, TransitPolicy,
    UserClass,
};
use adroute_sim::{Ctx, Engine, EventRecord, MisbehaviorModel, MisbehaviorSpec, Protocol};
use adroute_topology::{AdId, LinkId, Topology};

use crate::forwarding::DataPlane;

/// Policy attributes attached to a route.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PvAttrs {
    /// QOS class the route applies to (`None` = any).
    pub qos: Option<QosClass>,
    /// User class the route applies to (`None` = any).
    pub uci: Option<UserClass>,
    /// Source ADs permitted to use this route.
    pub scope: AdSet,
}

impl PvAttrs {
    /// Attributes that apply to all traffic.
    pub fn any() -> PvAttrs {
        PvAttrs {
            qos: None,
            uci: None,
            scope: AdSet::Any,
        }
    }

    /// Whether a flow matches these attributes.
    pub fn matches(&self, flow: &FlowSpec) -> bool {
        self.qos.is_none_or(|q| q == flow.qos)
            && self.uci.is_none_or(|u| u == flow.uci)
            && self.scope.contains(flow.src)
    }

    /// Approximate encoded size in bytes.
    pub fn encoded_size(&self) -> usize {
        2 + 2 + self.scope.encoded_size()
    }
}

/// One route in an update or RIB: full AD path plus policy attributes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PvRoute {
    /// Destination AD.
    pub dest: AdId,
    /// AD path ending at `dest`. In an update, it starts at the sender;
    /// in a local RIB, at the next hop.
    pub path: Vec<AdId>,
    /// Policy attributes.
    pub attrs: PvAttrs,
    /// Cumulative cost: link metrics plus transit charges.
    pub cost: u32,
}

impl PvRoute {
    /// Approximate encoded size in bytes.
    pub fn encoded_size(&self) -> usize {
        4 + 4 + 4 * self.path.len() + self.attrs.encoded_size()
    }
}

/// A full-table routing update: the sender's entire exportable RIB for
/// the receiving neighbor.
#[derive(Clone, Debug)]
pub struct PvUpdate {
    /// Advertised routes.
    pub routes: Vec<PvRoute>,
}

/// Protocol configuration.
#[derive(Clone, Debug)]
pub struct PathVector {
    /// Ground-truth per-AD policies; each router consults **only its
    /// own** entry (policies themselves are private — only their effects
    /// travel, as route attributes).
    pub policies: PolicyDb,
    /// IDRP-style source/distribution scopes on routes. `false` models
    /// BGP-2, which cannot express source-specific policy: scopes are
    /// widened to `Any` (violations then surface in the audit).
    pub scope_attrs: bool,
    /// Maximum routes advertised per destination to one neighbor
    /// (cheapest first). Models the paper's concern about advertising
    /// "multiple routes per destination, each with different policy
    /// attributes".
    pub max_routes_per_dest: usize,
    /// Time of day at which time-window policy conditions are evaluated.
    pub eval_time: TimeOfDay,
    /// Minimum route advertisement interval in microseconds: after a RIB
    /// change, the router waits this long (coalescing further changes)
    /// before advertising. 0 disables batching (advertise immediately).
    pub mrai_us: u64,
    /// Byzantine assignments. Path vector understands
    /// [`MisbehaviorModel::RouteLeak`]: the leaker re-advertises its
    /// entire loc-RIB to every neighbor with wildcard attributes,
    /// bypassing the offerings conversion of its own `TransitPolicy` —
    /// the classic transit route leak.
    pub misbehavior: MisbehaviorSpec,
}

impl PathVector {
    /// IDRP with the given policies and default knobs.
    pub fn idrp(policies: PolicyDb) -> PathVector {
        PathVector {
            policies,
            scope_attrs: true,
            max_routes_per_dest: 32,
            eval_time: TimeOfDay::NOON,
            mrai_us: 2_000,
            misbehavior: MisbehaviorSpec::default(),
        }
    }

    /// BGP-2: same machinery, no source scopes.
    pub fn bgp2(policies: PolicyDb) -> PathVector {
        PathVector {
            scope_attrs: false,
            ..PathVector::idrp(policies)
        }
    }
}

/// One advertisable offering derived from a transit policy at export time.
#[derive(Clone, Debug)]
struct Offering {
    qos: Option<Vec<QosClass>>,
    uci: Option<Vec<UserClass>>,
    scope: AdSet,
    cost: u32,
}

/// Converts `policy` into offerings for transit traversals with the given
/// fixed destination / previous / next ADs (see module docs).
fn offerings(
    policy: &TransitPolicy,
    dst: AdId,
    prev: AdId,
    next: AdId,
    time: TimeOfDay,
) -> Vec<Offering> {
    let mut out = Vec::new();
    // Sources not yet denied by earlier terms.
    let mut remaining = AdSet::Any;
    for term in &policy.terms {
        let mut src_cond: Option<&AdSet> = None;
        let mut qos_cond: Option<&Vec<QosClass>> = None;
        let mut uci_cond: Option<&Vec<UserClass>> = None;
        let mut applicable = true;
        for cond in &term.conditions {
            match cond {
                PolicyCondition::SrcIn(s) => src_cond = Some(s),
                PolicyCondition::QosIn(q) => qos_cond = Some(q),
                PolicyCondition::UciIn(u) => uci_cond = Some(u),
                PolicyCondition::DstIn(s) => applicable &= s.contains(dst),
                PolicyCondition::PrevIn(s) => applicable &= s.contains(prev),
                PolicyCondition::NextIn(s) => applicable &= s.contains(next),
                PolicyCondition::TimeWindow(a, b) => applicable &= time.in_window(*a, *b),
            }
        }
        if !applicable {
            continue;
        }
        match term.action {
            PolicyAction::Deny => {
                // Remove the denied sources from everything that follows.
                // (Class-conditioned denials over-restrict; conservative.)
                match src_cond {
                    Some(AdSet::Only(v)) => {
                        remaining = remaining.intersect(&AdSet::Except(v.clone()))
                    }
                    Some(AdSet::Except(v)) => {
                        remaining = remaining.intersect(&AdSet::Only(v.clone()))
                    }
                    Some(AdSet::Any) | None => {
                        // Unconditional (w.r.t. source) denial: everything
                        // after is shadowed.
                        return out;
                    }
                }
                if remaining.is_empty_set() {
                    return out;
                }
            }
            PolicyAction::Permit { cost } => {
                let scope = match src_cond {
                    Some(s) => remaining.intersect(s),
                    None => remaining.clone(),
                };
                if scope.is_empty_set() {
                    continue;
                }
                let unconditional = src_cond.is_none() && qos_cond.is_none() && uci_cond.is_none();
                out.push(Offering {
                    qos: qos_cond.cloned(),
                    uci: uci_cond.cloned(),
                    scope,
                    cost,
                });
                if unconditional {
                    // Catch-all permit: later terms are fully shadowed.
                    return out;
                }
            }
        }
    }
    if let PolicyAction::Permit { cost } = policy.default {
        if !remaining.is_empty_set() {
            out.push(Offering {
                qos: None,
                uci: None,
                scope: remaining,
                cost,
            });
        }
    }
    out
}

/// Per-AD router state.
#[derive(Clone, Debug)]
pub struct PvRouter {
    me: AdId,
    /// Last full table received from each neighbor (paths start at that
    /// neighbor), indexed by the dense adjacency slot
    /// ([`Ctx::neighbor_slot`]) instead of a map.
    adj_in: Vec<Option<Vec<PvRoute>>>,
    /// Selected routes: cheapest per `(dest, attrs)`, sorted for
    /// determinism. Paths start at the next hop.
    pub loc_rib: Vec<PvRoute>,
    /// Whether an MRAI advertisement timer is outstanding.
    advert_pending: bool,
}

impl PvRouter {
    /// Total routes stored across neighbor RIBs (the state-size measure
    /// of experiment E4).
    pub fn adj_rib_size(&self) -> usize {
        self.adj_in.iter().flatten().map(Vec::len).sum()
    }

    /// Selected routes toward one destination.
    pub fn routes_to(&self, dest: AdId) -> impl Iterator<Item = &PvRoute> {
        self.loc_rib.iter().filter(move |r| r.dest == dest)
    }

    /// The cheapest selected route matching `flow`.
    pub fn best_match(&self, flow: &FlowSpec) -> Option<&PvRoute> {
        self.loc_rib
            .iter()
            .filter(|r| r.dest == flow.dst && r.attrs.matches(flow))
            .min_by(|a, b| (a.cost, a.path.len(), &a.path).cmp(&(b.cost, b.path.len(), &b.path)))
    }
}

impl PathVector {
    /// Schedules an MRAI-batched advertisement (or sends immediately when
    /// batching is disabled).
    fn schedule_advert(&self, r: &mut PvRouter, ctx: &mut Ctx<'_, PvUpdate>) {
        if self.mrai_us == 0 {
            self.advertise(r, ctx);
        } else if !r.advert_pending {
            r.advert_pending = true;
            ctx.set_timer(self.mrai_us, 1);
        }
    }

    fn recompute(&self, r: &mut PvRouter, ctx: &Ctx<'_, PvUpdate>) -> bool {
        let mut best: BTreeMap<(AdId, PvAttrs), PvRoute> = BTreeMap::new();
        // Up neighbors in ascending id order: the same visit order the
        // old per-neighbor BTreeMap produced, so tie-breaks are stable.
        for (nbr, link) in ctx.neighbors() {
            let Some(routes) = ctx.neighbor_slot(nbr).and_then(|s| r.adj_in[s].as_ref()) else {
                continue; // nothing heard from this neighbor yet
            };
            let w = ctx.link_metric(link);
            for route in routes {
                if route.path.contains(&r.me) {
                    continue; // loop avoidance via full path information
                }
                let cand = PvRoute {
                    dest: route.dest,
                    path: route.path.clone(),
                    attrs: route.attrs.clone(),
                    cost: route.cost.saturating_add(w),
                };
                let key = (cand.dest, cand.attrs.clone());
                match best.get(&key) {
                    Some(cur)
                        if (cur.cost, cur.path.len(), &cur.path)
                            <= (cand.cost, cand.path.len(), &cand.path) => {}
                    _ => {
                        best.insert(key, cand);
                    }
                }
            }
        }
        let new_rib: Vec<PvRoute> = best.into_values().collect();
        if new_rib != r.loc_rib {
            r.loc_rib = new_rib;
            true
        } else {
            false
        }
    }

    fn advertise(&self, r: &PvRouter, ctx: &mut Ctx<'_, PvUpdate>) {
        let policy = self.policies.policy(r.me);
        let leaking = self.misbehavior.model_of(r.me) == Some(MisbehaviorModel::RouteLeak);
        for (nbr, _) in ctx.neighbors() {
            let mut routes: Vec<PvRoute> = Vec::new();
            // Own-origin route: reaching us is not transit; always offered.
            routes.push(PvRoute {
                dest: r.me,
                path: vec![r.me],
                attrs: PvAttrs::any(),
                cost: 0,
            });
            // Transit routes, narrowed by our offerings. The receiver
            // prepends us to each path on import.
            let mut per_dest: BTreeMap<AdId, Vec<PvRoute>> = BTreeMap::new();
            for route in &r.loc_rib {
                if route.path.contains(&nbr) {
                    continue; // receiver would loop-reject; save the bytes
                }
                if leaking {
                    // Route leak: every known route goes to every neighbor
                    // with wildcard attributes — the offerings conversion
                    // (our own policy!) is bypassed entirely.
                    per_dest.entry(route.dest).or_default().push(PvRoute {
                        dest: route.dest,
                        path: route.path.clone(),
                        attrs: PvAttrs::any(),
                        cost: route.cost,
                    });
                    continue;
                }
                let next = route.path[0];
                for off in offerings(policy, route.dest, nbr, next, self.eval_time) {
                    per_dest.entry(route.dest).or_default().extend(combine(
                        route,
                        &off,
                        self.scope_attrs,
                    ));
                }
            }
            for (_dest, cands) in per_dest {
                // Best route per distinct attribute set, then cheapest-first
                // truncation to the advertisement budget.
                let mut best: BTreeMap<PvAttrs, PvRoute> = BTreeMap::new();
                for c in cands {
                    match best.get(&c.attrs) {
                        Some(cur)
                            if (cur.cost, cur.path.len(), &cur.path)
                                <= (c.cost, c.path.len(), &c.path) => {}
                        _ => {
                            best.insert(c.attrs.clone(), c);
                        }
                    }
                }
                let mut cands: Vec<PvRoute> = best.into_values().collect();
                cands.sort_by(|a, b| {
                    (a.cost, a.path.len(), &a.path, &a.attrs).cmp(&(
                        b.cost,
                        b.path.len(),
                        &b.path,
                        &b.attrs,
                    ))
                });
                cands.truncate(self.max_routes_per_dest);
                routes.extend(cands);
            }
            ctx.send(nbr, PvUpdate { routes });
        }
    }
}

/// Combines a selected route with one offering into advertised routes
/// (possibly several: one per QOS/UCI class the offering names).
fn combine(route: &PvRoute, off: &Offering, scope_attrs: bool) -> Vec<PvRoute> {
    // Scope: narrow; or widen to Any when scopes are unsupported (BGP-2).
    let scope = if scope_attrs {
        let s = route.attrs.scope.intersect(&off.scope);
        if s.is_empty_set() {
            return Vec::new();
        }
        s
    } else {
        AdSet::Any
    };
    let qos_options: Vec<Option<QosClass>> = match (&route.attrs.qos, &off.qos) {
        (None, None) => vec![None],
        (Some(q), None) => vec![Some(*q)],
        (None, Some(list)) => list.iter().map(|q| Some(*q)).collect(),
        (Some(q), Some(list)) => {
            if list.contains(q) {
                vec![Some(*q)]
            } else {
                return Vec::new();
            }
        }
    };
    let uci_options: Vec<Option<UserClass>> = match (&route.attrs.uci, &off.uci) {
        (None, None) => vec![None],
        (Some(u), None) => vec![Some(*u)],
        (None, Some(list)) => list.iter().map(|u| Some(*u)).collect(),
        (Some(u), Some(list)) => {
            if list.contains(u) {
                vec![Some(*u)]
            } else {
                return Vec::new();
            }
        }
    };
    let mut out = Vec::with_capacity(qos_options.len() * uci_options.len());
    for q in &qos_options {
        for u in &uci_options {
            out.push(PvRoute {
                dest: route.dest,
                path: route.path.clone(),
                attrs: PvAttrs {
                    qos: *q,
                    uci: *u,
                    scope: scope.clone(),
                },
                cost: route.cost.saturating_add(off.cost),
            });
        }
    }
    out
}

impl Protocol for PathVector {
    type Router = PvRouter;
    type Msg = PvUpdate;

    fn make_router(&self, topo: &Topology, ad: AdId) -> PvRouter {
        PvRouter {
            me: ad,
            adj_in: vec![None; topo.full_degree(ad)],
            loc_rib: Vec::new(),
            advert_pending: false,
        }
    }

    fn on_start(&self, r: &mut PvRouter, ctx: &mut Ctx<'_, PvUpdate>) {
        self.advertise(r, ctx);
    }

    fn on_message(
        &self,
        r: &mut PvRouter,
        ctx: &mut Ctx<'_, PvUpdate>,
        from: AdId,
        _link: LinkId,
        msg: PvUpdate,
    ) {
        // Prepend the sender so stored paths run next-hop … dest.
        let routes: Vec<PvRoute> = msg
            .routes
            .into_iter()
            .map(|mut route| {
                if route.path.first() != Some(&from) {
                    route.path.insert(0, from);
                }
                route
            })
            .collect();
        if let Some(slot) = ctx.neighbor_slot(from) {
            r.adj_in[slot] = Some(routes);
        }
        ctx.count("pv_recompute", 1);
        let changed = self.recompute(r, ctx);
        // Emit before scheduling the advertisement: the batch timer below
        // anchors to this record in the causal log.
        ctx.emit(EventRecord::RouteRecompute {
            ad: ctx.me(),
            proto: "pv",
            changed,
        });
        if changed {
            self.schedule_advert(r, ctx);
        }
    }

    fn on_timer(&self, r: &mut PvRouter, ctx: &mut Ctx<'_, PvUpdate>, _token: u64) {
        if r.advert_pending {
            r.advert_pending = false;
            self.advertise(r, ctx);
        }
    }

    fn on_link_event(
        &self,
        r: &mut PvRouter,
        ctx: &mut Ctx<'_, PvUpdate>,
        _link: LinkId,
        neighbor: AdId,
        up: bool,
    ) {
        if !up {
            if let Some(slot) = ctx.neighbor_slot(neighbor) {
                r.adj_in[slot] = None;
            }
        }
        ctx.count("pv_recompute", 1);
        let changed = self.recompute(r, ctx);
        ctx.emit(EventRecord::RouteRecompute {
            ad: ctx.me(),
            proto: "pv",
            changed,
        });
        if changed || up {
            self.schedule_advert(r, ctx);
        }
    }

    fn msg_size(&self, msg: &PvUpdate) -> usize {
        4 + msg.routes.iter().map(PvRoute::encoded_size).sum::<usize>()
    }
}

impl DataPlane for Engine<PathVector> {
    type Mark = ();

    fn next_hop(
        &mut self,
        at: AdId,
        flow: &FlowSpec,
        _prev: Option<AdId>,
        _mark: &mut (),
    ) -> Option<AdId> {
        self.router(at).best_match(flow).map(|r| r.path[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forwarding::{audit_path, forward, score_flows, ForwardOutcome};
    use adroute_policy::workload::PolicyWorkload;
    use adroute_topology::generate::{line, ring, HierarchyConfig};

    fn converge(topo: Topology, pv: PathVector) -> Engine<PathVector> {
        let mut e = Engine::new(topo, pv);
        e.run_to_quiescence();
        e
    }

    #[test]
    fn permissive_policies_reach_everywhere() {
        let topo = ring(6);
        let db = PolicyDb::permissive(&topo);
        let mut e = converge(topo, PathVector::idrp(db));
        let topo = e.topo().clone();
        for f in crate::forwarding::sample_flows(&topo, 20, 1) {
            let out = forward(&mut e, &topo, &f);
            assert!(out.delivered(), "{f}: {out:?}");
        }
    }

    #[test]
    fn full_path_prevents_loops() {
        let topo = ring(5);
        let db = PolicyDb::permissive(&topo);
        let e = converge(topo, PathVector::idrp(db));
        for ad in e.topo().ad_ids() {
            for r in &e.router(ad).loc_rib {
                assert!(
                    !r.path.contains(&ad),
                    "{ad} stores looping path {:?}",
                    r.path
                );
                let mut p = r.path.clone();
                p.sort_unstable();
                p.dedup();
                assert_eq!(p.len(), r.path.len(), "duplicate in path");
            }
        }
    }

    #[test]
    fn deny_all_transit_is_never_advertised_through() {
        let topo = line(4);
        let mut db = PolicyDb::permissive(&topo);
        db.set_policy(TransitPolicy::deny_all(AdId(1)));
        let mut e = converge(topo, PathVector::idrp(db));
        let topo = e.topo().clone();
        // 0 -> 3 must fail: the only physical path transits AD1.
        let out = forward(&mut e, &topo, &FlowSpec::best_effort(AdId(0), AdId(3)));
        assert!(matches!(out, ForwardOutcome::NoRoute { .. }), "{out:?}");
        // 0 -> 1 (AD1 as endpoint) still works.
        let out = forward(&mut e, &topo, &FlowSpec::best_effort(AdId(0), AdId(1)));
        assert!(out.delivered());
    }

    #[test]
    fn route_leaker_readvertises_against_its_own_policy() {
        use adroute_sim::{MisbehaviorModel, MisbehaviorSpec};
        // Same topology as deny_all_transit_is_never_advertised_through,
        // but AD1 now *leaks*: it advertises the transit route its own
        // policy forbids, so 0->3 is delivered — in violation.
        let topo = line(4);
        let mut db = PolicyDb::permissive(&topo);
        db.set_policy(TransitPolicy::deny_all(AdId(1)));
        let mut pv = PathVector::idrp(db.clone());
        pv.misbehavior = MisbehaviorSpec::single(AdId(1), MisbehaviorModel::RouteLeak);
        let mut e = converge(topo, pv);
        let topo = e.topo().clone();
        let f = FlowSpec::best_effort(AdId(0), AdId(3));
        let out = forward(&mut e, &topo, &f);
        let ForwardOutcome::Delivered { path } = &out else {
            panic!("leak should open the forbidden route: {out:?}")
        };
        let audit = audit_path(&topo, &db, &f, path);
        assert_eq!(
            audit.violations,
            vec![AdId(1)],
            "the tripwire evidence names the leaker"
        );
    }

    #[test]
    fn source_scope_enforces_source_specific_policy() {
        // Ring 0-1-2-3-0: AD1 denies source 0; 0->2 must go via 3.
        let topo = ring(4);
        let mut db = PolicyDb::permissive(&topo);
        let mut p1 = TransitPolicy::permit_all(AdId(1));
        p1.push_term(
            vec![PolicyCondition::SrcIn(AdSet::only([AdId(0)]))],
            PolicyAction::Deny,
        );
        db.set_policy(p1);
        let mut e = converge(topo, PathVector::idrp(db.clone()));
        let topo = e.topo().clone();
        let f = FlowSpec::best_effort(AdId(0), AdId(2));
        let out = forward(&mut e, &topo, &f);
        let ForwardOutcome::Delivered { path } = &out else {
            panic!("{out:?}")
        };
        assert_eq!(path, &vec![AdId(0), AdId(3), AdId(2)]);
        assert!(audit_path(&topo, &db, &f, path).compliant());
        // A different source may use AD1.
        let out = forward(&mut e, &topo, &FlowSpec::best_effort(AdId(3), AdId(2)));
        assert!(out.delivered());
    }

    #[test]
    fn bgp2_without_scopes_loses_enforcement() {
        let topo = ring(4);
        let mut db = PolicyDb::permissive(&topo);
        let mut p1 = TransitPolicy::permit_all(AdId(1));
        p1.push_term(
            vec![PolicyCondition::SrcIn(AdSet::only([AdId(0)]))],
            PolicyAction::Deny,
        );
        db.set_policy(p1);
        let mut e = converge(topo, PathVector::bgp2(db.clone()));
        let topo = e.topo().clone();
        let f = FlowSpec::best_effort(AdId(0), AdId(2));
        let score = score_flows(&mut e, &topo, &db, &[f]);
        // BGP-2 still delivers (it has routes), but cannot see the
        // source-specific denial; compliance is luck of cost tie-break.
        assert_eq!(score.delivered, 1);
    }

    #[test]
    fn qos_terms_split_routes() {
        // Line 0-1-2: AD1 permits QOS0 cheap, QOS1 expensive.
        let topo = line(3);
        let mut db = PolicyDb::permissive(&topo);
        let mut p1 = TransitPolicy::deny_all(AdId(1));
        p1.push_term(
            vec![PolicyCondition::QosIn(vec![QosClass(0)])],
            PolicyAction::Permit { cost: 1 },
        );
        p1.push_term(
            vec![PolicyCondition::QosIn(vec![QosClass(1)])],
            PolicyAction::Permit { cost: 9 },
        );
        db.set_policy(p1);
        let e = converge(topo, PathVector::idrp(db));
        let routes: Vec<_> = e.router(AdId(0)).routes_to(AdId(2)).collect();
        assert_eq!(routes.len(), 2, "{routes:?}");
        let q0 = routes
            .iter()
            .find(|r| r.attrs.qos == Some(QosClass(0)))
            .unwrap();
        let q1 = routes
            .iter()
            .find(|r| r.attrs.qos == Some(QosClass(1)))
            .unwrap();
        assert_eq!(q0.cost + 8, q1.cost);
        // Forwarding respects the class split.
        let mut e = e;
        let topo = e.topo().clone();
        let f1 = FlowSpec::best_effort(AdId(0), AdId(2)).with_qos(QosClass(1));
        assert!(forward(&mut e, &topo, &f1).delivered());
        let f2 = FlowSpec::best_effort(AdId(0), AdId(2)).with_qos(QosClass(2));
        assert!(matches!(
            forward(&mut e, &topo, &f2),
            ForwardOutcome::NoRoute { .. }
        ));
    }

    #[test]
    fn granular_policies_blow_up_tables() {
        let topo = HierarchyConfig::figure1().generate();
        let coarse = PolicyWorkload::granularity(1, 3).generate(&topo);
        let fine = PolicyWorkload::granularity(5, 3).generate(&topo);
        let e1 = converge(topo.clone(), PathVector::idrp(coarse));
        let e2 = converge(topo.clone(), PathVector::idrp(fine));
        let rib1: usize = topo.ad_ids().map(|a| e1.router(a).loc_rib.len()).sum();
        let rib2: usize = topo.ad_ids().map(|a| e2.router(a).loc_rib.len()).sum();
        assert!(
            rib2 > rib1,
            "finer policy should enlarge RIBs: {rib1} vs {rib2}"
        );
    }

    #[test]
    fn reconverges_after_failure() {
        let topo = ring(5);
        let db = PolicyDb::permissive(&topo);
        let mut e = converge(topo, PathVector::idrp(db));
        let l = e.topo().link_between(AdId(0), AdId(1)).unwrap();
        let t = e.now().plus_us(1000);
        e.schedule_link_change(l, false, t);
        e.run_to_quiescence();
        let topo = e.topo().clone();
        let out = forward(&mut e, &topo, &FlowSpec::best_effort(AdId(0), AdId(1)));
        let ForwardOutcome::Delivered { path } = &out else {
            panic!("{out:?}")
        };
        assert_eq!(path.len(), 5, "must take the long way: {path:?}");
    }

    #[test]
    fn deterministic() {
        let run = || {
            let topo = ring(6);
            let db = PolicyDb::permissive(&topo);
            let mut e = Engine::new(topo, PathVector::idrp(db));
            let t = e.run_to_quiescence();
            (t, e.stats.msgs_sent, e.stats.bytes_sent)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn offerings_conversion_cases() {
        let dst = AdId(9);
        let (prev, next) = (AdId(1), AdId(2));
        let noon = TimeOfDay::NOON;
        // permit_all => one catch-all offering.
        let p = TransitPolicy::permit_all(AdId(5));
        let offs = offerings(&p, dst, prev, next, noon);
        assert_eq!(offs.len(), 1);
        assert_eq!(offs[0].scope, AdSet::Any);
        // deny_all => none.
        assert!(offerings(&TransitPolicy::deny_all(AdId(5)), dst, prev, next, noon).is_empty());
        // deny(src {3}) then default permit => catch-all minus {3}.
        let mut p = TransitPolicy::permit_all(AdId(5));
        p.push_term(
            vec![PolicyCondition::SrcIn(AdSet::only([AdId(3)]))],
            PolicyAction::Deny,
        );
        let offs = offerings(&p, dst, prev, next, noon);
        assert_eq!(offs.len(), 1);
        assert!(!offs[0].scope.contains(AdId(3)));
        assert!(offs[0].scope.contains(AdId(4)));
        // PrevIn gating: a term for a different prev is skipped.
        let mut p = TransitPolicy::deny_all(AdId(5));
        p.push_term(
            vec![PolicyCondition::PrevIn(AdSet::only([AdId(7)]))],
            PolicyAction::Permit { cost: 0 },
        );
        assert!(offerings(&p, dst, prev, next, noon).is_empty());
        p.push_term(
            vec![PolicyCondition::PrevIn(AdSet::only([prev]))],
            PolicyAction::Permit { cost: 2 },
        );
        let offs = offerings(&p, dst, prev, next, noon);
        assert_eq!(offs.len(), 1);
        assert_eq!(offs[0].cost, 2);
        // Unconditional deny stops processing.
        let mut p = TransitPolicy::permit_all(AdId(5));
        p.push_term(vec![], PolicyAction::Deny);
        p.push_term(vec![], PolicyAction::Permit { cost: 0 });
        assert!(offerings(&p, dst, prev, next, noon).is_empty());
        // Deny Except({4}) leaves only source 4.
        let mut p = TransitPolicy::permit_all(AdId(5));
        p.push_term(
            vec![PolicyCondition::SrcIn(AdSet::except([AdId(4)]))],
            PolicyAction::Deny,
        );
        let offs = offerings(&p, dst, prev, next, noon);
        assert_eq!(offs.len(), 1);
        assert_eq!(offs[0].scope, AdSet::only([AdId(4)]));
    }
}
