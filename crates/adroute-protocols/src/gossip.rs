//! A deliberately cheap flood/gossip workload for engine benchmarking.
//!
//! The five design-point protocols all recompute routes per event —
//! O(N·E) work that measures *protocol* cost, not *engine* cost. To
//! answer "how many events per second does the discrete-event core
//! sustain at paper scale (§2.2's ~10⁵ ADs)?" we need a workload whose
//! per-event handler is a few array reads: then the measured throughput
//! is the engine's dispatch, queue, and delivery machinery itself.
//!
//! [`Gossip`] floods waves of tokens: each of `origins` seed ADs starts
//! one wave per round (rounds spaced `period_us` apart, driven by the
//! engine's timer path), and every router forwards a wave to all its
//! neighbors the first time it sees it. One wave therefore crosses every
//! up link exactly twice (once in each direction), so a run dispatches a
//! predictable `origins × rounds × 2·links` deliveries plus the timer
//! and start events — enough traffic to time, with handlers that do no
//! allocation in steady state (neighbor lists are precomputed per
//! router; duplicate suppression is one bitset probe).
//!
//! The workload is fully deterministic (no randomness, no maps), so it
//! also serves as a scale-stress for the deterministically-parallel
//! region execution in `adroute_sim::parallel`.

use adroute_sim::{Ctx, Protocol};
use adroute_topology::{AdId, LinkId, Topology};

/// Flood-wave benchmark protocol: configuration shared by all routers.
#[derive(Clone, Copy, Debug)]
pub struct Gossip {
    /// Number of wave-origin ADs, spread evenly across the id space.
    pub origins: usize,
    /// Waves each origin starts, one per round.
    pub rounds: u32,
    /// Gap between an origin's consecutive rounds, in microseconds.
    pub period_us: u64,
    /// Synthetic per-delivery compute: iterations of an integer-mixing
    /// loop each received message burns, modeling the route computation
    /// a real protocol performs per update. Zero (the default) measures
    /// the engine's own ceiling; large values shift the workload from
    /// engine-bound to compute-bound, which is where region-parallel
    /// execution pays off (its journaling + sequential commit replay
    /// cost a roughly constant overhead per event).
    pub work: u32,
}

impl Default for Gossip {
    fn default() -> Gossip {
        Gossip {
            origins: 4,
            rounds: 4,
            period_us: 50_000,
            work: 0,
        }
    }
}

impl Gossip {
    /// The origin index of `ad` (origins are spread evenly over the id
    /// space), or `None` if `ad` is not an origin.
    fn origin_index(&self, num_ads: usize, ad: AdId) -> Option<u32> {
        let o = self.origins.min(num_ads).max(1);
        let stride = num_ads / o;
        let idx = ad.index();
        if idx.is_multiple_of(stride) && idx / stride < o {
            Some((idx / stride) as u32)
        } else {
            None
        }
    }

    /// Total distinct wave ids a run of this configuration floods.
    pub fn total_waves(&self) -> u32 {
        self.origins as u32 * self.rounds
    }
}

/// Per-AD state: a precomputed neighbor list and a seen-wave bitset.
#[derive(Clone, Debug)]
pub struct GossipRouter {
    /// Neighbor ids, precomputed at build time so the flood hot path
    /// never touches the adjacency (or allocates).
    nbrs: Vec<AdId>,
    /// One bit per wave id; a set bit suppresses re-flooding.
    seen: Vec<u64>,
    /// `Some(k)` if this AD is the `k`-th wave origin.
    origin: Option<u32>,
    /// Distinct waves this router has observed (origin or relay).
    pub waves_seen: u64,
    /// Accumulator for the synthetic compute, so the optimizer cannot
    /// elide the mixing loop. Summed with a commutative operation: the
    /// final value is independent of delivery interleaving.
    pub checksum: u64,
}

impl GossipRouter {
    fn mark(&mut self, wave: u32) -> bool {
        let (word, bit) = (wave as usize / 64, wave as usize % 64);
        let fresh = self.seen[word] & (1 << bit) == 0;
        self.seen[word] |= 1 << bit;
        fresh
    }
}

impl Gossip {
    /// Floods `wave` to every precomputed neighbor of `r`.
    fn flood(&self, r: &mut GossipRouter, ctx: &mut Ctx<'_, u32>, wave: u32) {
        r.waves_seen += 1;
        for i in 0..r.nbrs.len() {
            ctx.send(r.nbrs[i], wave);
        }
    }
}

impl Protocol for Gossip {
    type Router = GossipRouter;
    type Msg = u32;

    fn make_router(&self, topo: &Topology, ad: AdId) -> GossipRouter {
        GossipRouter {
            nbrs: topo.neighbors(ad).map(|(n, _)| n).collect(),
            seen: vec![0; (self.total_waves() as usize).div_ceil(64).max(1)],
            origin: self.origin_index(topo.num_ads(), ad),
            waves_seen: 0,
            checksum: 0,
        }
    }

    fn on_start(&self, r: &mut GossipRouter, ctx: &mut Ctx<'_, u32>) {
        let Some(k) = r.origin else { return };
        let wave = k * self.rounds;
        r.mark(wave);
        self.flood(r, ctx, wave);
        if self.rounds > 1 {
            ctx.set_timer(self.period_us, 1);
        }
    }

    fn on_message(
        &self,
        r: &mut GossipRouter,
        ctx: &mut Ctx<'_, u32>,
        _from: AdId,
        _link: LinkId,
        wave: u32,
    ) {
        if self.work > 0 {
            let mut h = (wave as u64) ^ 0x9e37_79b9_7f4a_7c15;
            for _ in 0..self.work {
                h = h.wrapping_mul(0x2545_f491_4f6c_dd1d).rotate_left(17) ^ (h >> 7);
            }
            r.checksum = r.checksum.wrapping_add(h);
        }
        if r.mark(wave) {
            self.flood(r, ctx, wave);
        }
    }

    fn on_timer(&self, r: &mut GossipRouter, ctx: &mut Ctx<'_, u32>, round: u64) {
        let Some(k) = r.origin else { return };
        let wave = k * self.rounds + round as u32;
        if r.mark(wave) {
            self.flood(r, ctx, wave);
        }
        if (round as u32) + 1 < self.rounds {
            ctx.set_timer(self.period_us, round + 1);
        }
    }

    fn msg_size(&self, _msg: &u32) -> usize {
        4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adroute_sim::Engine;
    use adroute_topology::HierarchyConfig;

    fn internet(seed: u64) -> Topology {
        HierarchyConfig {
            seed,
            ..HierarchyConfig::default()
        }
        .generate()
    }

    #[test]
    fn every_router_sees_every_wave() {
        let topo = internet(3);
        let n = topo.num_ads();
        let g = Gossip {
            origins: 3,
            rounds: 2,
            period_us: 10_000,
            work: 0,
        };
        let mut e = Engine::new(topo, g);
        e.run_to_quiescence();
        for ad in 0..n {
            let r = e.router(AdId(ad as u32));
            assert_eq!(
                r.waves_seen,
                g.total_waves() as u64,
                "AD {ad} missed a wave"
            );
        }
        // One wave crosses every up link exactly twice.
        let links = e.topo().num_links() as u64;
        assert_eq!(e.stats.msgs_sent, g.total_waves() as u64 * 2 * links);
    }

    #[test]
    fn parallel_matches_sequential() {
        let topo = internet(9);
        let g = Gossip {
            work: 16,
            ..Gossip::default()
        };
        let mut seq = Engine::new(topo.clone(), g);
        seq.enable_trace(1 << 16);
        let t_seq = seq.run_to_quiescence();
        for regions in [2, 8] {
            let mut par = Engine::new(topo.clone(), g);
            par.enable_trace(1 << 16);
            let t = par.run_to_quiescence_parallel(regions);
            assert_eq!(t, t_seq);
            assert_eq!(par.trace.render(), seq.trace.render(), "{regions} regions");
            assert_eq!(par.stats.msgs_sent, seq.stats.msgs_sent);
            for ad in 0..seq.topo().num_ads() {
                let id = AdId(ad as u32);
                assert_eq!(par.router(id).checksum, seq.router(id).checksum);
            }
        }
    }

    #[test]
    fn origins_are_spread_and_clamped() {
        let g = Gossip {
            origins: 4,
            rounds: 1,
            period_us: 1,
            work: 0,
        };
        // 4 origins over 8 ADs: stride 2 → ids 0, 2, 4, 6.
        let hits: Vec<usize> = (0..8)
            .filter(|&i| g.origin_index(8, AdId(i as u32)).is_some())
            .collect();
        assert_eq!(hits, vec![0, 2, 4, 6]);
        // More origins than ADs clamps to one origin per AD.
        let g = Gossip {
            origins: 9,
            rounds: 1,
            period_us: 1,
            work: 0,
        };
        assert!((0..3).all(|i| g.origin_index(3, AdId(i as u32)).is_some()));
    }
}
