//! The hop-by-hop design points of the inter-AD routing design space
//! (paper Sections 5.1–5.3), plus the shared machinery they are built
//! from.
//!
//! | Module | Design point | Paper anchor |
//! |---|---|---|
//! | [`naive_dv`] | distance vector, hop-by-hop, **no** policy | the pre-policy baseline whose count-to-infinity Section 5.1 contrasts |
//! | [`ecma`] | distance vector, hop-by-hop, policy **in topology** | the NIST/ECMA proposal (Section 5.1.1) |
//! | [`path_vector`] | distance vector (path vector), hop-by-hop, explicit policy terms | IDRP / BGP-2 (Section 5.2.1) |
//! | [`ls_hbh`] | link state, hop-by-hop, explicit policy terms | Section 5.3 |
//!
//! The fourth viable design point — link state, **source routing**,
//! explicit policy terms (the ORWG architecture of Section 5.4) — is the
//! paper's primary recommendation and lives in its own crate,
//! `adroute-core`, built on the [`linkstate`] flooding machinery defined
//! here.
//!
//! [`gossip`] is not a design point: it is a deliberately cheap flood
//! workload whose per-event cost is a few array reads, used by
//! `adroute bench --engine` and the scale experiments to measure the
//! discrete-event core itself rather than any protocol's computation.
//!
//! [`forwarding`] provides the common data-plane harness: every protocol
//! exposes a [`forwarding::DataPlane`], and experiments drive packets
//! hop-by-hop through the converged network, auditing loop-freedom and
//! policy compliance against the oracle.

pub mod ecma;
pub mod forwarding;
pub mod gossip;
pub mod linkstate;
pub mod ls_hbh;
pub mod naive_dv;
pub mod path_vector;

pub use forwarding::{forward, DataPlane, ForwardOutcome};
