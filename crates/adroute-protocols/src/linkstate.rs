//! Shared link-state machinery: policy-bearing LSAs, the link-state
//! database, and reliable flooding with duplicate suppression.
//!
//! In both link-state design points (Sections 5.3 and 5.4 of the paper),
//! "link state updates can be augmented to include policy related
//! attributes of the resources they advertise". An [`Lsa`] therefore
//! carries, besides the origin's adjacencies and metrics, the origin's
//! full advertised [`TransitPolicy`] (its Policy Terms) and hierarchy
//! level. Flooding these gives every AD the complete topology *and* policy
//! view from which routes satisfying any set of policy constraints can be
//! computed.

use adroute_policy::{PolicyDb, TransitPolicy};
use adroute_sim::{Ctx, EventRecord};
use adroute_topology::{graph::Ad, AdId, AdLevel, AdRole, Topology};

/// A link-state advertisement: one AD's adjacencies plus its Policy Terms.
#[derive(Clone, Debug)]
pub struct Lsa {
    /// Originating AD.
    pub origin: AdId,
    /// Monotonic sequence number; higher supersedes.
    pub seq: u64,
    /// Hierarchy level of the origin (lets receivers reconstruct the
    /// Figure-1 structure for link classification).
    pub level: AdLevel,
    /// Operational adjacencies: `(neighbor, metric, delay_us)`.
    pub links: Vec<(AdId, u32, u64)>,
    /// The origin's advertised transit policy (its PTs).
    pub policy: TransitPolicy,
}

impl Lsa {
    /// Approximate encoded size in bytes.
    pub fn encoded_size(&self) -> usize {
        4 + 8 + 1 + 16 * self.links.len() + self.policy.encoded_size()
    }
}

/// A link-state database: the newest LSA per origin, plus a version
/// counter consumers use to invalidate derived caches.
#[derive(Clone, Debug)]
pub struct LsDb {
    lsas: Vec<Option<Lsa>>,
    version: u64,
}

impl LsDb {
    /// An empty database sized for `num_ads` ADs.
    pub fn new(num_ads: usize) -> LsDb {
        LsDb {
            lsas: vec![None; num_ads],
            version: 0,
        }
    }

    /// Inserts `lsa` if it is newer than the stored one. Returns `true`
    /// if the database changed.
    pub fn insert(&mut self, lsa: Lsa) -> bool {
        let slot = &mut self.lsas[lsa.origin.index()];
        let newer = slot.as_ref().is_none_or(|cur| lsa.seq > cur.seq);
        if newer {
            *slot = Some(lsa);
            self.version += 1;
        }
        newer
    }

    /// The stored LSA of `origin`, if any.
    pub fn get(&self, origin: AdId) -> Option<&Lsa> {
        self.lsas[origin.index()].as_ref()
    }

    /// Monotonic change counter (bumps on every accepted insert).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of LSAs present.
    pub fn len(&self) -> usize {
        self.lsas.iter().filter(|l| l.is_some()).count()
    }

    /// Number of AD slots (present or not).
    pub fn num_ads(&self) -> usize {
        self.lsas.len()
    }

    /// Whether no LSA has been stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total encoded size of the database (the state cost of the
    /// link-state approach).
    pub fn encoded_size(&self) -> usize {
        self.lsas.iter().flatten().map(Lsa::encoded_size).sum()
    }

    /// Reconstructs the AD-level view this database describes: a
    /// [`Topology`] containing every **bidirectionally confirmed**
    /// operational link, and the [`PolicyDb`] of advertised policies
    /// (ADs with no LSA yet default to deny-all — an unknown AD cannot
    /// be used for transit).
    ///
    /// This is the quiescence hook Route Servers consume: the ORWG
    /// network diffs each server's current view against this fresh one
    /// and applies the difference as incremental deltas rather than
    /// reinstalling (and re-precomputing) from scratch.
    pub fn view(&self) -> (Topology, PolicyDb) {
        let n = self.lsas.len();
        let mut ads = Vec::with_capacity(n);
        let mut policies = Vec::with_capacity(n);
        for i in 0..n {
            let id = AdId(i as u32);
            match &self.lsas[i] {
                Some(lsa) => {
                    ads.push(Ad {
                        id,
                        level: lsa.level,
                        role: AdRole::Hybrid,
                    });
                    policies.push(lsa.policy.clone());
                }
                None => {
                    ads.push(Ad {
                        id,
                        level: AdLevel::Campus,
                        role: AdRole::Stub,
                    });
                    policies.push(TransitPolicy::deny_all(id));
                }
            }
        }
        let mut edges: Vec<(AdId, AdId, u32)> = Vec::new();
        let mut delays: Vec<u64> = Vec::new();
        for lsa in self.lsas.iter().flatten() {
            for &(nbr, metric, delay) in &lsa.links {
                if lsa.origin < nbr {
                    // Confirm the reverse adjacency before accepting.
                    let confirmed = self
                        .get(nbr)
                        .map(|other| other.links.iter().any(|&(n, _, _)| n == lsa.origin))
                        .unwrap_or(false);
                    if confirmed {
                        edges.push((lsa.origin, nbr, metric));
                        delays.push(delay);
                    }
                }
            }
        }
        let mut topo = Topology::new(ads, &edges);
        for (i, d) in delays.into_iter().enumerate() {
            topo.set_delay(adroute_topology::LinkId(i as u32), d);
        }
        topo.reclassify_roles();
        (topo, PolicyDb::from_policies(policies))
    }
}

/// Flooding state embedded in each link-state router: the database plus
/// origination bookkeeping.
#[derive(Clone, Debug)]
pub struct Flooder {
    /// This router's AD.
    pub me: AdId,
    /// The local copy of the link-state database.
    pub db: LsDb,
    /// Own LSA sequence number (bumped on each origination).
    pub seq: u64,
    /// What we advertise about ourselves, recorded at origination so a
    /// sequence-number jump (see [`Flooder::handle`]) can re-originate
    /// without protocol help.
    identity: Option<(AdLevel, TransitPolicy)>,
}

/// Messages exchanged by flooding: a single LSA per message (a
/// simplification of OSPF-style bundling that keeps byte accounting
/// transparent).
pub type FloodMsg = Lsa;

impl Flooder {
    /// A flooder for `me` in a network of `num_ads` ADs.
    pub fn new(me: AdId, num_ads: usize) -> Flooder {
        Flooder {
            me,
            db: LsDb::new(num_ads),
            seq: 0,
            identity: None,
        }
    }

    /// Originates (or re-originates) this AD's own LSA describing its
    /// current operational adjacencies, and floods it to all neighbors.
    pub fn originate(
        &mut self,
        ctx: &mut Ctx<'_, FloodMsg>,
        level: AdLevel,
        policy: TransitPolicy,
    ) {
        self.seq += 1;
        self.identity = Some((level, policy.clone()));
        let links: Vec<(AdId, u32, u64)> = ctx
            .neighbors()
            .into_iter()
            .map(|(nbr, link)| (nbr, ctx.link_metric(link), ctx.link_delay(link)))
            .collect();
        ctx.emit(EventRecord::LsaOriginate {
            origin: self.me,
            seq: self.seq,
            links: links.len() as u64,
        });
        let lsa = Lsa {
            origin: self.me,
            seq: self.seq,
            level,
            links,
            policy,
        };
        self.db.insert(lsa.clone());
        for (nbr, _) in ctx.neighbors() {
            ctx.send(nbr, lsa.clone());
        }
    }

    /// Handles a received LSA: stores and re-floods it if new. Returns
    /// `true` if the database changed.
    ///
    /// A copy of our *own* LSA that we did not issue — one with a higher
    /// sequence number, or our current number but different content — is
    /// a ghost from a previous incarnation: we crashed, lost the counter,
    /// and restarted at 1, so the network would reject everything we now
    /// say (or, seq-tied, keep the ghost's stale adjacencies). The cure is
    /// OSPF's self-originated-LSA rule: jump our counter past the ghost
    /// and re-originate with current adjacencies, which supersedes it
    /// everywhere. Ordinary flooding echoes of our own LSA are exact
    /// clones of what we sent (same seq, same content) and fall through to
    /// duplicate suppression.
    pub fn handle(&mut self, ctx: &mut Ctx<'_, FloodMsg>, from: AdId, lsa: FloodMsg) -> bool {
        if lsa.origin == self.me {
            let ghost = lsa.seq > self.seq
                || (lsa.seq == self.seq
                    && self
                        .db
                        .get(self.me)
                        .is_some_and(|cur| cur.links != lsa.links));
            if !ghost {
                ctx.count("flood_dup", 1);
                ctx.emit(EventRecord::LsaDuplicate {
                    at: self.me,
                    origin: lsa.origin,
                    origin_seq: lsa.seq,
                });
                return false;
            }
            self.seq = lsa.seq;
            ctx.count("ls_seq_jump", 1);
            ctx.emit(EventRecord::LsaSeqJump {
                at: self.me,
                seq: lsa.seq,
            });
            let Some((level, policy)) = self.identity.clone() else {
                return false; // never originated: nothing to supersede with
            };
            self.originate(ctx, level, policy);
            return true;
        }
        if self.db.insert(lsa.clone()) {
            ctx.emit(EventRecord::LsaAccept {
                at: self.me,
                origin: lsa.origin,
                origin_seq: lsa.seq,
            });
            for (nbr, _) in ctx.neighbors() {
                if nbr != from {
                    ctx.send(nbr, lsa.clone());
                }
            }
            true
        } else {
            ctx.count("flood_dup", 1);
            ctx.emit(EventRecord::LsaDuplicate {
                at: self.me,
                origin: lsa.origin,
                origin_seq: lsa.seq,
            });
            false
        }
    }

    /// Database resynchronization with a neighbor, run when an adjacency
    /// (re)appears: sends every stored LSA to `neighbor`.
    ///
    /// This is the (simplified) equivalent of OSPF's database-description
    /// exchange. Without it, an LSA originated while the network was
    /// partitioned would never cross the healed link — flooding alone is
    /// unacknowledged and provides no catch-up — and views would stay
    /// stale forever (the churn tests caught exactly that).
    pub fn resync(&mut self, ctx: &mut Ctx<'_, FloodMsg>, neighbor: AdId) {
        let lsas: Vec<FloodMsg> = (0..self.db.num_ads())
            .filter_map(|i| self.db.get(AdId(i as u32)).cloned())
            .collect();
        ctx.count("ls_resync", 1);
        ctx.emit(EventRecord::LsaResync {
            at: self.me,
            neighbor,
            lsas: lsas.len() as u64,
        });
        for lsa in lsas {
            ctx.send(neighbor, lsa);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adroute_policy::PolicyAction;
    use adroute_topology::graph::make_ad;

    fn lsa(origin: u32, seq: u64, nbrs: &[u32]) -> Lsa {
        Lsa {
            origin: AdId(origin),
            seq,
            level: AdLevel::Campus,
            links: nbrs.iter().map(|&n| (AdId(n), 1, 1000)).collect(),
            policy: TransitPolicy::permit_all(AdId(origin)),
        }
    }

    #[test]
    fn newer_seq_supersedes() {
        let mut db = LsDb::new(3);
        assert!(db.insert(lsa(0, 1, &[1])));
        assert!(!db.insert(lsa(0, 1, &[1, 2])), "same seq must not replace");
        assert!(db.insert(lsa(0, 2, &[1, 2])));
        assert_eq!(db.get(AdId(0)).unwrap().links.len(), 2);
        assert_eq!(db.version(), 2);
        assert_eq!(db.len(), 1);
        assert!(!db.is_empty());
    }

    #[test]
    fn view_requires_bidirectional_confirmation() {
        let mut db = LsDb::new(3);
        db.insert(lsa(0, 1, &[1]));
        // AD1 hasn't advertised the 0-1 adjacency yet.
        let (topo, _) = db.view();
        assert_eq!(topo.num_links(), 0);
        db.insert(lsa(1, 1, &[0, 2]));
        let (topo, _) = db.view();
        assert_eq!(topo.num_links(), 1);
        assert!(topo.link_between(AdId(0), AdId(1)).is_some());
        // 1-2 still unconfirmed.
        assert!(topo.link_between(AdId(1), AdId(2)).is_none());
    }

    #[test]
    fn view_defaults_unknown_ads_to_deny() {
        let mut db = LsDb::new(2);
        db.insert(lsa(0, 1, &[]));
        let (_, pols) = db.view();
        // AD1 never advertised: deny-all.
        assert!(matches!(pols.policy(AdId(1)).default, PolicyAction::Deny));
        assert!(matches!(
            pols.policy(AdId(0)).default,
            PolicyAction::Permit { .. }
        ));
    }

    #[test]
    fn view_preserves_levels_metrics_and_roles() {
        let mut db = LsDb::new(2);
        let mut a = lsa(0, 1, &[1]);
        a.level = AdLevel::Backbone;
        a.links[0].1 = 7;
        db.insert(a);
        db.insert(lsa(1, 1, &[0]));
        let (topo, _) = db.view();
        assert_eq!(topo.ad(AdId(0)).level, AdLevel::Backbone);
        let l = topo.link_between(AdId(0), AdId(1)).unwrap();
        assert_eq!(topo.link(l).metric, 7);
        assert_eq!(topo.ad(AdId(1)).role, AdRole::Stub);
        let _ = make_ad(0, AdLevel::Campus); // exercise helper linkage
    }

    #[test]
    fn encoded_sizes_accumulate() {
        let mut db = LsDb::new(4);
        assert_eq!(db.encoded_size(), 0);
        db.insert(lsa(0, 1, &[1, 2, 3]));
        let one = db.encoded_size();
        assert!(one > 0);
        db.insert(lsa(1, 1, &[0]));
        assert!(db.encoded_size() > one);
    }
}
