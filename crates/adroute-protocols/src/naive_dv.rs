//! A classic Bellman–Ford distance-vector protocol with **no** policy
//! support: the baseline the paper's Section 3/5.1 arguments start from.
//!
//! Routers exchange `(destination, metric)` vectors with neighbors,
//! triggered by change. Without the ECMA partial-order rule the protocol
//! exhibits the classic pathologies on cyclic topologies: transient loops
//! and **count-to-infinity** after failures (bounded here by the
//! configurable `infinity` metric). Split horizon with poisoned reverse is
//! available as a knob for the convergence ablation (E10).
//!
//! Because the protocol knows nothing of policy, its data plane happily
//! routes transit traffic through ADs whose policies forbid it — the
//! policy-integrity failure that the Table-1 capability probe records.

use adroute_policy::FlowSpec;
use adroute_sim::{Ctx, Engine, EventRecord, MisbehaviorModel, MisbehaviorSpec, Protocol};
use adroute_topology::{AdId, LinkId, Topology};

use crate::forwarding::DataPlane;

/// Protocol configuration.
#[derive(Clone, Debug)]
pub struct NaiveDv {
    /// The unreachable metric. Smaller values bound count-to-infinity
    /// sooner (RIP uses 16).
    pub infinity: u32,
    /// Split horizon with poisoned reverse.
    pub split_horizon: bool,
    /// EGP mode: use only **hierarchical** links, modeling EGP's acyclic
    /// topology restriction (paper Section 3: "there can be no cycles in
    /// the EGP graph"). Lateral and bypass links are ignored entirely —
    /// the connectivity they provide is wasted, which experiment E11
    /// quantifies.
    pub hierarchical_only: bool,
    /// Byzantine assignments. DV understands two models:
    /// [`MisbehaviorModel::DistanceFalsification`] (the AD advertises
    /// distance 1 to *every* destination, attracting transit it cannot
    /// serve) and [`MisbehaviorModel::Blackhole`] (honest advertisements,
    /// but the data plane silently drops all through-traffic).
    pub misbehavior: MisbehaviorSpec,
}

impl Default for NaiveDv {
    fn default() -> Self {
        NaiveDv {
            infinity: 64,
            split_horizon: false,
            hierarchical_only: false,
            misbehavior: MisbehaviorSpec::default(),
        }
    }
}

impl NaiveDv {
    /// The EGP model: reachability exchange over the hierarchy tree only.
    pub fn egp() -> NaiveDv {
        NaiveDv {
            hierarchical_only: true,
            ..NaiveDv::default()
        }
    }

    /// Neighbors this configuration is willing to peer with.
    fn peers(&self, ctx: &Ctx<'_, DvUpdate>) -> Vec<(AdId, LinkId)> {
        ctx.neighbors()
            .into_iter()
            .filter(|&(_, l)| {
                !self.hierarchical_only
                    || ctx.link_kind(l) == adroute_topology::LinkKind::Hierarchical
            })
            .collect()
    }
}

/// A distance-vector update: the sender's full distance table.
#[derive(Clone, Debug)]
pub struct DvUpdate {
    /// `(destination, metric)` pairs; `metric == infinity` poisons.
    pub entries: Vec<(AdId, u32)>,
}

/// Per-AD router state.
#[derive(Clone, Debug)]
pub struct DvRouter {
    me: AdId,
    /// Best known metric per destination (`infinity` = unreachable).
    pub metric: Vec<u32>,
    /// Chosen next hop per destination.
    pub next_hop: Vec<Option<AdId>>,
    /// Last vector received from each neighbor, indexed by the dense
    /// adjacency slot ([`Ctx::neighbor_slot`]) instead of a hash map.
    adv_in: Vec<Option<Vec<u32>>>,
}

impl DvRouter {
    /// Number of reachable destinations (excluding self).
    pub fn reachable(&self, infinity: u32) -> usize {
        self.metric
            .iter()
            .enumerate()
            .filter(|&(i, &m)| m < infinity && i != self.me.index())
            .count()
    }
}

impl NaiveDv {
    fn recompute(&self, r: &mut DvRouter, ctx: &Ctx<'_, DvUpdate>) -> bool {
        let n = r.metric.len();
        let mut changed = false;
        // Resolve each peer's adjacency slot once; the inner loop is then
        // a flat array walk with no hashing.
        let neighbors: Vec<(AdId, LinkId, usize)> = self
            .peers(ctx)
            .into_iter()
            .filter_map(|(nbr, link)| ctx.neighbor_slot(nbr).map(|slot| (nbr, link, slot)))
            .collect();
        for dest in 0..n {
            let (mut best, mut hop) = if dest == r.me.index() {
                (0u32, None)
            } else {
                (self.infinity, None)
            };
            if dest != r.me.index() {
                for &(nbr, link, slot) in &neighbors {
                    if let Some(v) = &r.adv_in[slot] {
                        let m = v[dest]
                            .saturating_add(ctx.link_metric(link))
                            .min(self.infinity);
                        if m < best || (m == best && hop.is_some_and(|h| nbr < h)) {
                            best = m;
                            hop = Some(nbr);
                        }
                    }
                }
            }
            if r.metric[dest] != best || r.next_hop[dest] != hop {
                r.metric[dest] = best;
                r.next_hop[dest] = if best >= self.infinity { None } else { hop };
                changed = true;
            }
        }
        changed
    }

    fn advertise(&self, r: &DvRouter, ctx: &mut Ctx<'_, DvUpdate>) {
        // A distance falsifier claims to be one hop from everything —
        // split-horizon poisoning included, since the lie is strictly
        // better than any honest poison.
        let falsify =
            self.misbehavior.model_of(r.me) == Some(MisbehaviorModel::DistanceFalsification);
        for (nbr, _) in self.peers(ctx) {
            let entries: Vec<(AdId, u32)> = r
                .metric
                .iter()
                .enumerate()
                .map(|(dest, &m)| {
                    if falsify && dest != r.me.index() {
                        return (AdId(dest as u32), 1);
                    }
                    let poisoned =
                        self.split_horizon && r.next_hop[dest] == Some(nbr) && dest != r.me.index();
                    (AdId(dest as u32), if poisoned { self.infinity } else { m })
                })
                .collect();
            ctx.send(nbr, DvUpdate { entries });
        }
    }
}

impl Protocol for NaiveDv {
    type Router = DvRouter;
    type Msg = DvUpdate;

    fn make_router(&self, topo: &Topology, ad: AdId) -> DvRouter {
        let n = topo.num_ads();
        let mut metric = vec![self.infinity; n];
        metric[ad.index()] = 0;
        DvRouter {
            me: ad,
            metric,
            next_hop: vec![None; n],
            adv_in: vec![None; topo.full_degree(ad)],
        }
    }

    fn on_start(&self, r: &mut DvRouter, ctx: &mut Ctx<'_, DvUpdate>) {
        self.advertise(r, ctx);
    }

    fn on_message(
        &self,
        r: &mut DvRouter,
        ctx: &mut Ctx<'_, DvUpdate>,
        from: AdId,
        link: LinkId,
        msg: DvUpdate,
    ) {
        if self.hierarchical_only && ctx.link_kind(link) != adroute_topology::LinkKind::Hierarchical
        {
            return; // EGP peers only across hierarchy links
        }
        let mut v = vec![self.infinity; r.metric.len()];
        for (dest, m) in msg.entries {
            // Ignore entries for destinations outside our world: a buggy
            // or malicious neighbor must not be able to crash us.
            if let Some(slot) = v.get_mut(dest.index()) {
                *slot = m.min(self.infinity);
            }
        }
        if let Some(slot) = ctx.neighbor_slot(from) {
            r.adv_in[slot] = Some(v);
        }
        ctx.count("dv_recompute", 1);
        let changed = self.recompute(r, ctx);
        // Emit before advertising: the sends below anchor to this record
        // in the causal log (recompute → triggered updates).
        ctx.emit(EventRecord::RouteRecompute {
            ad: ctx.me(),
            proto: "dv",
            changed,
        });
        if changed {
            self.advertise(r, ctx);
        }
    }

    fn on_link_event(
        &self,
        r: &mut DvRouter,
        ctx: &mut Ctx<'_, DvUpdate>,
        _link: LinkId,
        neighbor: AdId,
        up: bool,
    ) {
        if !up {
            if let Some(slot) = ctx.neighbor_slot(neighbor) {
                r.adv_in[slot] = None;
            }
        }
        ctx.count("dv_recompute", 1);
        let changed = self.recompute(r, ctx);
        ctx.emit(EventRecord::RouteRecompute {
            ad: ctx.me(),
            proto: "dv",
            changed,
        });
        if changed || up {
            // On link-up, (re)introduce ourselves even if nothing changed.
            self.advertise(r, ctx);
        }
    }

    fn msg_size(&self, msg: &DvUpdate) -> usize {
        4 + 8 * msg.entries.len()
    }
}

/// Feeds every operational router's full distance table to the
/// count-to-infinity watchdog as
/// [`MetricSample`](adroute_sim::Observation::MetricSample)s — one
/// monitoring tick's control-plane snapshot. Only the DV family exposes
/// climbing metrics, so this feeder lives beside the protocol.
///
/// Each sample carries ground-truth reachability, computed once per tick
/// from the connected components of the *operational* topology: during a
/// partition, metrics toward the far island climb legitimately, and the
/// `reachable: false` tag keeps the watchdog from quarantining the
/// unreachable destination (unreachable ≠ byzantine).
pub fn observe_dv_metrics(engine: &Engine<NaiveDv>, bank: &mut adroute_sim::MonitorBank) {
    let infinity = engine.protocol().infinity;
    let comp = adroute_topology::algo::connected_components(engine.topo());
    for ad in engine.topo().ad_ids() {
        if !engine.router_is_up(ad) {
            continue;
        }
        let r = engine.router(ad);
        for (dest, &m) in r.metric.iter().enumerate() {
            if dest == ad.index() {
                continue;
            }
            bank.observe(adroute_sim::Observation::MetricSample {
                at: ad,
                dst: AdId(dest as u32),
                metric: m,
                infinity,
                reachable: comp[ad.index()] == comp[dest],
            });
        }
    }
}

impl DataPlane for Engine<NaiveDv> {
    type Mark = ();

    fn next_hop(
        &mut self,
        at: AdId,
        flow: &FlowSpec,
        _prev: Option<AdId>,
        _mark: &mut (),
    ) -> Option<AdId> {
        let mis = self.protocol().misbehavior.model_of(at);
        // A blackholer (and a distance falsifier, which attracted transit
        // it has no real route for) drops everything not addressed to it.
        if at != flow.dst
            && at != flow.src
            && matches!(
                mis,
                Some(MisbehaviorModel::Blackhole) | Some(MisbehaviorModel::DistanceFalsification)
            )
        {
            return None;
        }
        self.router(at).next_hop[flow.dst.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forwarding::{forward, ForwardOutcome};
    use adroute_sim::SimTime;
    use adroute_topology::generate::{grid, line, ring};

    fn converge(topo: Topology, dv: NaiveDv) -> Engine<NaiveDv> {
        let mut e = Engine::new(topo, dv);
        e.run_to_quiescence();
        e
    }

    #[test]
    fn converges_to_shortest_hops_on_line() {
        let e = converge(line(5), NaiveDv::default());
        let r0 = e.router(AdId(0));
        assert_eq!(r0.metric[4], 4);
        assert_eq!(r0.next_hop[4], Some(AdId(1)));
        assert_eq!(r0.reachable(64), 4);
    }

    #[test]
    fn converges_on_ring_and_grid() {
        let e = converge(ring(8), NaiveDv::default());
        assert_eq!(e.router(AdId(0)).metric[4], 4);
        assert_eq!(e.router(AdId(0)).metric[6], 2);
        let g = converge(grid(4, 4), NaiveDv::default());
        assert_eq!(g.router(AdId(0)).metric[15], 6);
    }

    #[test]
    fn forwards_packets_after_convergence() {
        let topo = line(6);
        let mut e = converge(topo, NaiveDv::default());
        let f = FlowSpec::best_effort(AdId(0), AdId(5));
        let topo2 = e.topo().clone();
        let out = forward(&mut e, &topo2, &f);
        assert!(out.delivered());
        assert_eq!(out.path().len(), 6);
    }

    #[test]
    fn reroutes_after_failure() {
        let mut e = Engine::new(ring(6), NaiveDv::default());
        e.run_to_quiescence();
        // 0->3 initially 3 hops either way; cut 0-1 and expect 0->3 via 5,4.
        let l = e.topo().link_between(AdId(0), AdId(1)).unwrap();
        let t = e.now().plus_us(1000);
        e.schedule_link_change(l, false, t);
        e.run_to_quiescence();
        assert_eq!(e.router(AdId(0)).metric[3], 3);
        assert_eq!(e.router(AdId(0)).next_hop[3], Some(AdId(5)));
        // 0->1 now the long way round.
        assert_eq!(e.router(AdId(0)).metric[1], 5);
    }

    #[test]
    fn partition_counts_to_infinity_but_terminates() {
        // Classic: line 0-1-2; cut 1-2. Node 2 becomes unreachable; 0 and 1
        // may bounce (no split horizon) until the infinity cap.
        let dv = NaiveDv {
            infinity: 16,
            split_horizon: false,
            ..NaiveDv::default()
        };
        let mut e = Engine::new(ring(4), dv);
        e.run_to_quiescence();
        // Cut both links of AD2 to partition it.
        let l12 = e.topo().link_between(AdId(1), AdId(2)).unwrap();
        let l23 = e.topo().link_between(AdId(2), AdId(3)).unwrap();
        let t = e.now().plus_us(1000);
        e.schedule_link_change(l12, false, t);
        e.schedule_link_change(l23, false, t);
        e.stats.reset_counters();
        e.run_to_quiescence();
        assert_eq!(e.router(AdId(0)).metric[2], 16, "AD2 should be unreachable");
        assert_eq!(e.router(AdId(0)).next_hop[2], None);
        // Count-to-infinity generated extra traffic.
        assert!(e.stats.msgs_sent > 4, "expected count-to-infinity chatter");
    }

    #[test]
    fn split_horizon_reduces_failure_chatter() {
        let run = |sh: bool| {
            let dv = NaiveDv {
                infinity: 16,
                split_horizon: sh,
                ..NaiveDv::default()
            };
            let mut e = Engine::new(ring(6), dv);
            e.run_to_quiescence();
            let l = e.topo().link_between(AdId(0), AdId(1)).unwrap();
            let t = e.now().plus_us(1000);
            e.schedule_link_change(l, false, t);
            e.stats.reset_counters();
            e.run_to_quiescence();
            e.stats.msgs_sent
        };
        // Poisoned reverse should not *increase* convergence traffic.
        assert!(run(true) <= run(false) * 2);
    }

    #[test]
    fn link_recovery_restores_routes() {
        let mut e = Engine::new(line(3), NaiveDv::default());
        e.run_to_quiescence();
        let l = e.topo().link_between(AdId(1), AdId(2)).unwrap();
        e.schedule_link_change(l, false, SimTime::from_ms(100));
        e.run_to_quiescence();
        assert_eq!(e.router(AdId(0)).next_hop[2], None);
        let t = e.now().plus_us(1000);
        e.schedule_link_change(l, true, t);
        e.run_to_quiescence();
        assert_eq!(e.router(AdId(0)).metric[2], 2);
        assert_eq!(e.router(AdId(0)).next_hop[2], Some(AdId(1)));
    }

    #[test]
    fn no_route_to_partitioned_dest_drops() {
        let mut e = Engine::new(line(3), NaiveDv::default());
        e.run_to_quiescence();
        let l = e.topo().link_between(AdId(1), AdId(2)).unwrap();
        let t = e.now().plus_us(500);
        e.schedule_link_change(l, false, t);
        e.run_to_quiescence();
        let topo = e.topo().clone();
        let out = forward(&mut e, &topo, &FlowSpec::best_effort(AdId(0), AdId(2)));
        assert!(matches!(out, ForwardOutcome::NoRoute { .. }));
    }

    #[test]
    fn egp_mode_ignores_non_hierarchical_links() {
        use adroute_topology::generate::HierarchyConfig;
        // A topology rich in lateral/bypass links.
        let topo = HierarchyConfig {
            lateral_prob: 0.4,
            bypass_prob: 0.3,
            multihome_prob: 0.0,
            seed: 5,
            ..HierarchyConfig::default()
        }
        .generate();
        let (_, lateral, bypass) = topo.link_kind_counts();
        assert!(
            lateral > 0 && bypass > 0,
            "need non-tree links for the test"
        );
        let mut egp = Engine::new(topo.clone(), NaiveDv::egp());
        egp.run_to_quiescence();
        let mut full = Engine::new(topo.clone(), NaiveDv::default());
        full.run_to_quiescence();
        // EGP paths never cost less than full-graph paths, and are
        // sometimes strictly worse (a lateral shortcut it cannot use).
        let mut strictly_worse = 0;
        for ad in topo.ad_ids() {
            for dest in topo.ad_ids() {
                let e = egp.router(ad).metric[dest.index()];
                let f = full.router(ad).metric[dest.index()];
                assert!(e >= f, "{ad}->{dest}: egp {e} < full {f}");
                if e > f {
                    strictly_worse += 1;
                }
            }
        }
        assert!(strictly_worse > 0, "lateral links should shorten some path");
        // EGP forwarding never crosses a non-hierarchical link.
        let topo2 = egp.topo().clone();
        for f in crate::forwarding::sample_flows(&topo2, 20, 5) {
            let out = forward(&mut egp, &topo2, &f);
            for w in out.path().windows(2) {
                let l = topo2.link_between(w[0], w[1]).unwrap();
                assert_eq!(
                    topo2.link(l).kind,
                    adroute_topology::LinkKind::Hierarchical,
                    "EGP used non-tree link {:?}",
                    w
                );
            }
        }
    }

    #[test]
    fn distance_falsifier_attracts_and_drops_transit() {
        // Ring of 6: honest 0->3 is 3 hops either way. A falsifier at 1
        // claims distance 1 to everything, so 0 prefers 0->1->...(lie).
        let dv = NaiveDv {
            misbehavior: MisbehaviorSpec::single(AdId(1), MisbehaviorModel::DistanceFalsification),
            ..NaiveDv::default()
        };
        let mut e = Engine::new(ring(6), dv);
        e.run_to_quiescence();
        assert_eq!(e.router(AdId(0)).next_hop[3], Some(AdId(1)));
        assert_eq!(e.router(AdId(0)).metric[3], 2, "lured by the lie");
        let topo = e.topo().clone();
        let out = forward(&mut e, &topo, &FlowSpec::best_effort(AdId(0), AdId(3)));
        assert!(
            matches!(out, ForwardOutcome::NoRoute { .. }),
            "attracted transit is dropped: {out:?}"
        );
        // Traffic *to* the falsifier still arrives (it serves itself).
        let out = forward(&mut e, &topo, &FlowSpec::best_effort(AdId(0), AdId(1)));
        assert!(out.delivered());
    }

    #[test]
    fn blackholer_advertises_honestly_but_drops() {
        let dv = NaiveDv {
            misbehavior: MisbehaviorSpec::single(AdId(2), MisbehaviorModel::Blackhole),
            ..NaiveDv::default()
        };
        let mut e = Engine::new(line(5), dv);
        e.run_to_quiescence();
        // Advertisements are honest: 0 still sees the true metric.
        assert_eq!(e.router(AdId(0)).metric[4], 4);
        let topo = e.topo().clone();
        let out = forward(&mut e, &topo, &FlowSpec::best_effort(AdId(0), AdId(4)));
        assert!(matches!(out, ForwardOutcome::NoRoute { .. }));
        // The blackholer's own flows and flows to it are unaffected.
        assert!(forward(&mut e, &topo, &FlowSpec::best_effort(AdId(0), AdId(2))).delivered());
        assert!(forward(&mut e, &topo, &FlowSpec::best_effort(AdId(2), AdId(4))).delivered());
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut e = Engine::new(grid(3, 3), NaiveDv::default());
            let t = e.run_to_quiescence();
            (t, e.stats.msgs_sent, e.stats.bytes_sent)
        };
        assert_eq!(run(), run());
    }
}
