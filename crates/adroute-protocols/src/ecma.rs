//! The NIST/ECMA design point: distance vector, hop-by-hop, policy
//! embedded in the topology (paper Section 5.1.1).
//!
//! All policy is expressed through a centrally coordinated **global partial
//! ordering** of ADs. Every link traversal is *up* or *down* relative to
//! the ordering, and the forwarding rule — once a packet traverses a down
//! link it may never traverse another up link — prevents loops and
//! count-to-infinity on arbitrary (cyclic) topologies.
//!
//! Mechanically, every router keeps **two metrics per (destination, QOS)**:
//!
//! * `any` — the best metric over valley-free paths (usable by packets
//!   that have not yet gone down);
//! * `alldown` — the best metric over all-down paths (the only paths
//!   usable by packets that have already gone down).
//!
//! Updates advertise both. A receiver reaching the advertiser over an *up*
//! hop may extend the `any` route (phase preserved); over a *down* hop it
//! may extend only the `alldown` route (and the packet becomes marked).
//! Because up traversals strictly ascend the (rank, id) order and down
//! traversals strictly descend it, the route dependency graph is acyclic —
//! which is exactly why ECMA converges without counting to infinity
//! (experiment E10 measures this against [`crate::naive_dv`]).
//!
//! Per-QOS FIBs follow the paper: "an AD defines a separate metric for each
//! QOS supported by at least one of its neighbors; if a particular neighbor
//! does not advertise a particular QOS then the AD assigns an infinite
//! metric". Destination export filters and stub (no-transit) behaviour are
//! the destination-specific policy the design supports; source-specific
//! policy is expressible **only** through the ordering itself — the
//! limitation experiment E3 quantifies.

use adroute_policy::{FlowSpec, QosClass};
use adroute_sim::{Ctx, Engine, EventRecord, MisbehaviorModel, MisbehaviorSpec, Protocol};
use adroute_topology::{AdId, AdRole, LinkId, PartialOrder, Topology};

use crate::forwarding::DataPlane;

/// Per-AD configuration an administrator would set.
#[derive(Clone, Debug)]
pub struct EcmaAdConfig {
    /// QOS classes this AD supports as a transit (class 0 is always
    /// supported). A transit route for class `q` only forms through ADs
    /// supporting `q`.
    pub supported_qos: Vec<QosClass>,
    /// If set, the AD advertises transit routes only toward these
    /// destinations (destination-specific policy).
    pub transit_dests: Option<adroute_policy::AdSet>,
    /// Stub behaviour: advertise reachability of itself only, never
    /// re-advertise others' routes (no transit whatsoever).
    pub no_transit: bool,
}

impl Default for EcmaAdConfig {
    fn default() -> Self {
        EcmaAdConfig {
            supported_qos: vec![QosClass::BEST_EFFORT],
            transit_dests: None,
            no_transit: false,
        }
    }
}

/// Protocol configuration: the coordinated ordering plus per-AD knobs.
#[derive(Clone, Debug)]
pub struct Ecma {
    /// The global partial ordering (rank per AD), as negotiated by the
    /// paper's central authority.
    pub ranks: Vec<u32>,
    /// Number of QOS classes in play (ids `0..qos_classes`).
    pub qos_classes: u8,
    /// Per-AD administrator configuration.
    pub ad_config: Vec<EcmaAdConfig>,
    /// Unreachable metric.
    pub infinity: u32,
    /// Byzantine assignments. ECMA understands
    /// [`MisbehaviorModel::UpDownViolation`]: the violator advertises its
    /// valley-free (`any`) metric in the `alldown` slot and forwards
    /// *marked* packets through the `any` table — breaking the global
    /// up/down rule that makes the ordering loop-free and policy-safe.
    pub misbehavior: MisbehaviorSpec,
}

impl Ecma {
    /// The natural configuration for a generated hierarchy: ranks from
    /// levels, stubs and multi-homed stubs refuse transit, one QOS class.
    pub fn hierarchical(topo: &Topology) -> Ecma {
        let po = PartialOrder::from_levels(topo);
        let ranks = topo.ad_ids().map(|a| po.rank(a)).collect();
        let ad_config = topo
            .ads()
            .map(|ad| EcmaAdConfig {
                no_transit: matches!(ad.role, AdRole::Stub | AdRole::MultiHomedStub),
                ..EcmaAdConfig::default()
            })
            .collect();
        Ecma {
            ranks,
            qos_classes: 1,
            ad_config,
            infinity: 1 << 20,
            misbehavior: MisbehaviorSpec::default(),
        }
    }

    /// A configuration in which **every** AD offers transit, regardless of
    /// role — for synthetic convergence topologies (rings, grids) where
    /// the hierarchy roles are meaningless.
    pub fn all_transit(topo: &Topology) -> Ecma {
        let mut e = Ecma::hierarchical(topo);
        for cfg in &mut e.ad_config {
            cfg.no_transit = false;
        }
        e
    }

    /// A configuration running under an explicitly **negotiated ordering**
    /// — the ranks produced by the central authority's computation
    /// (`adroute_policy::ordering::solve_ordering` /
    /// `greedy_negotiate`). This is how the E3 pipeline closes the loop:
    /// policies → ordering constraints → solved ranks → a running ECMA
    /// network whose forwarding obeys exactly those ranks.
    ///
    /// Stub behaviour still follows the AD roles (a rank cannot express
    /// "no transit at all"; the paper's ECMA uses update filtering for
    /// that, as here).
    ///
    /// # Panics
    /// Panics if `ranks.len() != topo.num_ads()`.
    pub fn with_ordering(topo: &Topology, ranks: Vec<u32>) -> Ecma {
        assert_eq!(ranks.len(), topo.num_ads(), "one rank per AD");
        let mut e = Ecma::hierarchical(topo);
        e.ranks = ranks;
        e
    }

    /// Same, but with `q` QOS classes, each supported by every transit AD
    /// with the given probability (seeded); class 0 is universal.
    pub fn hierarchical_with_qos(topo: &Topology, q: u8, support_prob: f64, seed: u64) -> Ecma {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut e = Ecma::hierarchical(topo);
        e.qos_classes = q.max(1);
        for cfg in &mut e.ad_config {
            for c in 1..q {
                if rng.gen_bool(support_prob) {
                    cfg.supported_qos.push(QosClass(c));
                }
            }
        }
        e
    }

    /// Direction of the hop `from -> to`: `true` if up. Equal ranks break
    /// ties by id so the order is total.
    #[inline]
    fn hop_is_up(&self, from: AdId, to: AdId) -> bool {
        let (rf, rt) = (self.ranks[from.index()], self.ranks[to.index()]);
        rt > rf || (rt == rf && to > from)
    }

    #[inline]
    fn idx(&self, dest: AdId, qos: u8) -> usize {
        dest.index() * self.qos_classes as usize + qos as usize
    }

    fn supports(&self, ad: AdId, qos: u8) -> bool {
        qos == 0
            || self.ad_config[ad.index()]
                .supported_qos
                .contains(&QosClass(qos))
    }

    fn recompute(&self, r: &mut EcmaRouter, ctx: &Ctx<'_, EcmaUpdate>) -> bool {
        let mut changed = false;
        // Resolve each neighbor's adjacency slot once; the inner loop is
        // then a flat array walk with no hashing.
        let neighbors: Vec<(AdId, LinkId, usize)> = ctx
            .neighbors()
            .into_iter()
            .filter_map(|(nbr, link)| ctx.neighbor_slot(nbr).map(|s| (nbr, link, s)))
            .collect();
        let nq = self.qos_classes as usize;
        for dest_i in 0..r.num_ads {
            for qos in 0..nq as u8 {
                let slot = dest_i * nq + qos as usize;
                let mut best = EcmaEntry::unreachable(self.infinity);
                if dest_i == r.me.index() {
                    best = EcmaEntry {
                        any: (0, None),
                        alldown: (0, None),
                    };
                } else {
                    for &(nbr, link, nslot) in &neighbors {
                        let Some(v) = &r.adv_in[nslot] else {
                            continue;
                        };
                        let adv = v[slot];
                        let w = ctx.link_metric(link);
                        if self.hop_is_up(r.me, nbr) {
                            // Up hop: extends valley-free routes only, for
                            // unmarked packets only.
                            let m = adv.0.saturating_add(w).min(self.infinity);
                            if m < best.any.0 {
                                best.any = (m, Some(nbr));
                            }
                        } else {
                            // Down hop: packet becomes marked; must use the
                            // neighbor's all-down route. Extends both
                            // tables (an all-down path is also valley-free).
                            let m = adv.1.saturating_add(w).min(self.infinity);
                            if m < best.any.0 {
                                best.any = (m, Some(nbr));
                            }
                            if m < best.alldown.0 {
                                best.alldown = (m, Some(nbr));
                            }
                        }
                    }
                }
                if r.table[slot] != best {
                    r.table[slot] = best;
                    changed = true;
                }
            }
        }
        changed
    }

    fn advertise(&self, r: &EcmaRouter, ctx: &mut Ctx<'_, EcmaUpdate>) {
        let cfg = &self.ad_config[r.me.index()];
        let nq = self.qos_classes as usize;
        let mut entries = Vec::new();
        for dest_i in 0..r.num_ads {
            let dest = AdId(dest_i as u32);
            let is_self = dest == r.me;
            if !is_self {
                if cfg.no_transit {
                    continue;
                }
                if let Some(filter) = &cfg.transit_dests {
                    if !filter.contains(dest) {
                        continue;
                    }
                }
            }
            for qos in 0..nq as u8 {
                // Carrying transit for a QOS class requires supporting it:
                // non-self routes for unsupported classes are withheld, so
                // neighbors see the paper's "infinite metric".
                if !is_self && !self.supports(r.me, qos) {
                    continue;
                }
                let e = &r.table[dest_i * nq + qos as usize];
                if e.any.0 < self.infinity || e.alldown.0 < self.infinity {
                    // An up/down violator claims its valley-free metric is
                    // available even to marked packets, luring neighbors
                    // into down-then-up routes through it.
                    let alldown = if self.misbehavior.model_of(r.me)
                        == Some(MisbehaviorModel::UpDownViolation)
                    {
                        e.any.0
                    } else {
                        e.alldown.0
                    };
                    entries.push((dest, qos, e.any.0, alldown));
                }
            }
        }
        for (nbr, _) in ctx.neighbors() {
            ctx.send(
                nbr,
                EcmaUpdate {
                    entries: entries.clone(),
                },
            );
        }
    }
}

/// One FIB entry: `(metric, next hop)` for each packet phase.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EcmaEntry {
    /// Best valley-free route (packets that have not gone down).
    pub any: (u32, Option<AdId>),
    /// Best all-down route (packets already marked).
    pub alldown: (u32, Option<AdId>),
}

impl EcmaEntry {
    fn unreachable(infinity: u32) -> EcmaEntry {
        EcmaEntry {
            any: (infinity, None),
            alldown: (infinity, None),
        }
    }
}

/// A routing update: `(dest, qos, any-metric, alldown-metric)` entries.
#[derive(Clone, Debug)]
pub struct EcmaUpdate {
    /// Advertised routes.
    pub entries: Vec<(AdId, u8, u32, u32)>,
}

/// Per-AD ECMA router state.
#[derive(Clone, Debug)]
pub struct EcmaRouter {
    me: AdId,
    num_ads: usize,
    /// FIBs indexed `dest * qos_classes + qos`.
    pub table: Vec<EcmaEntry>,
    /// Last advertisement per neighbor, indexed by the dense adjacency
    /// slot ([`Ctx::neighbor_slot`]) instead of a hash map.
    adv_in: Vec<Option<Vec<(u32, u32)>>>,
}

impl EcmaRouter {
    /// The FIB entry for `(dest, qos)`.
    pub fn entry(&self, dest: AdId, qos: u8, qos_classes: u8) -> &EcmaEntry {
        &self.table[dest.index() * qos_classes as usize + qos as usize]
    }
}

impl Protocol for Ecma {
    type Router = EcmaRouter;
    type Msg = EcmaUpdate;

    fn make_router(&self, topo: &Topology, ad: AdId) -> EcmaRouter {
        let n = topo.num_ads();
        let nq = self.qos_classes as usize;
        let mut table = vec![EcmaEntry::unreachable(self.infinity); n * nq];
        for q in 0..nq {
            table[ad.index() * nq + q] = EcmaEntry {
                any: (0, None),
                alldown: (0, None),
            };
        }
        EcmaRouter {
            me: ad,
            num_ads: n,
            table,
            adv_in: vec![None; topo.full_degree(ad)],
        }
    }

    fn on_start(&self, r: &mut EcmaRouter, ctx: &mut Ctx<'_, EcmaUpdate>) {
        self.advertise(r, ctx);
    }

    fn on_message(
        &self,
        r: &mut EcmaRouter,
        ctx: &mut Ctx<'_, EcmaUpdate>,
        from: AdId,
        _link: LinkId,
        msg: EcmaUpdate,
    ) {
        let nq = self.qos_classes as usize;
        let mut v = vec![(self.infinity, self.infinity); r.num_ads * nq];
        for (dest, qos, any, alldown) in msg.entries {
            // Out-of-range destinations or classes from a buggy neighbor
            // are ignored, never indexed.
            if (qos as usize) < nq && dest.index() < r.num_ads {
                v[self.idx(dest, qos)] = (any.min(self.infinity), alldown.min(self.infinity));
            }
        }
        if let Some(slot) = ctx.neighbor_slot(from) {
            r.adv_in[slot] = Some(v);
        }
        ctx.count("ecma_recompute", 1);
        let changed = self.recompute(r, ctx);
        // Emit before advertising: the sends below anchor to this record
        // in the causal log (recompute → triggered updates).
        ctx.emit(EventRecord::RouteRecompute {
            ad: ctx.me(),
            proto: "ecma",
            changed,
        });
        if changed {
            self.advertise(r, ctx);
        }
    }

    fn on_link_event(
        &self,
        r: &mut EcmaRouter,
        ctx: &mut Ctx<'_, EcmaUpdate>,
        _link: LinkId,
        neighbor: AdId,
        up: bool,
    ) {
        if !up {
            if let Some(slot) = ctx.neighbor_slot(neighbor) {
                r.adv_in[slot] = None;
            }
        }
        ctx.count("ecma_recompute", 1);
        let changed = self.recompute(r, ctx);
        ctx.emit(EventRecord::RouteRecompute {
            ad: ctx.me(),
            proto: "ecma",
            changed,
        });
        if changed || up {
            self.advertise(r, ctx);
        }
    }

    fn msg_size(&self, msg: &EcmaUpdate) -> usize {
        4 + 13 * msg.entries.len()
    }
}

impl DataPlane for Engine<Ecma> {
    /// The ECMA packet mark: has the packet traversed a down link yet?
    type Mark = bool;

    fn next_hop(
        &mut self,
        at: AdId,
        flow: &FlowSpec,
        _prev: Option<AdId>,
        gone_down: &mut bool,
    ) -> Option<AdId> {
        let proto = self.protocol();
        if flow.qos.0 >= proto.qos_classes {
            return None;
        }
        let entry = self
            .router(at)
            .entry(flow.dst, flow.qos.0, proto.qos_classes);
        // An up/down violator backs its advertisement lie on the data
        // plane: marked packets are forwarded through the unrestricted
        // (valley-free) table, taking up hops they must not.
        let violate = proto.misbehavior.model_of(at) == Some(MisbehaviorModel::UpDownViolation);
        let (metric, hop) = if *gone_down && !violate {
            entry.alldown
        } else {
            entry.any
        };
        if metric >= proto.infinity {
            return None;
        }
        let next = hop?;
        if !proto.hop_is_up(at, next) {
            *gone_down = true;
        }
        Some(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forwarding::{forward, ForwardOutcome};
    use adroute_topology::generate::HierarchyConfig;
    use adroute_topology::{graph::make_ad, AdLevel};

    /// Backbone B(0); regionals R1(1), R2(2); campuses C1(3) under R1,
    /// C2(4) under R2; lateral R1-R2; multi-homed campus C3(5) under both
    /// R1 and R2.
    fn testnet() -> Topology {
        let ads = vec![
            make_ad(0, AdLevel::Backbone),
            make_ad(1, AdLevel::Regional),
            make_ad(2, AdLevel::Regional),
            make_ad(3, AdLevel::Campus),
            make_ad(4, AdLevel::Campus),
            make_ad(5, AdLevel::Campus),
        ];
        let mut t = Topology::new(
            ads,
            &[
                (AdId(0), AdId(1), 1),
                (AdId(0), AdId(2), 1),
                (AdId(1), AdId(2), 1),
                (AdId(1), AdId(3), 1),
                (AdId(2), AdId(4), 1),
                (AdId(1), AdId(5), 1),
                (AdId(2), AdId(5), 1),
            ],
        );
        t.reclassify_roles();
        t
    }

    fn converge(topo: Topology) -> Engine<Ecma> {
        let proto = Ecma::hierarchical(&topo);
        let mut e = Engine::new(topo, proto);
        e.run_to_quiescence();
        e
    }

    #[test]
    fn converges_and_routes_across_hierarchy() {
        let mut e = converge(testnet());
        let topo = e.topo().clone();
        let f = FlowSpec::best_effort(AdId(3), AdId(4));
        let out = forward(&mut e, &topo, &f);
        assert!(out.delivered(), "{out:?}");
        // Route must be valley-free under the level ordering.
        let po = PartialOrder::from_levels(&topo);
        assert!(po.is_valley_free(out.path()));
    }

    #[test]
    fn multihomed_stub_never_carries_transit() {
        let mut e = converge(testnet());
        let topo = e.topo().clone();
        // C3 (AD5) is multi-homed under R1 and R2 but refuses transit:
        // no R1<->R2 traffic may pass through it even though it is a
        // 2-hop physical path.
        for f in [
            FlowSpec::best_effort(AdId(3), AdId(4)),
            FlowSpec::best_effort(AdId(1), AdId(2)),
            FlowSpec::best_effort(AdId(4), AdId(3)),
        ] {
            let out = forward(&mut e, &topo, &f);
            if let ForwardOutcome::Delivered { path } = &out {
                assert!(
                    !path[1..path.len() - 1].contains(&AdId(5)),
                    "transit through multi-homed stub: {path:?}"
                );
            } else {
                panic!("flow {f} not delivered: {out:?}");
            }
        }
        // But C3 itself can still send and receive.
        let out = forward(
            &mut e,
            &topo.clone(),
            &FlowSpec::best_effort(AdId(5), AdId(4)),
        );
        assert!(out.delivered());
        let out = forward(&mut e, &topo, &FlowSpec::best_effort(AdId(3), AdId(5)));
        assert!(out.delivered());
    }

    #[test]
    fn no_count_to_infinity_on_failure() {
        let mut e = converge(testnet());
        // Fail R1-B; routes shift to lateral / other side without
        // count-to-infinity (messages bounded well below naive DV's).
        let l = e.topo().link_between(AdId(0), AdId(1)).unwrap();
        let t = e.now().plus_us(1000);
        e.schedule_link_change(l, false, t);
        e.stats.reset_counters();
        e.run_to_quiescence();
        assert!(
            e.stats.msgs_sent < 200,
            "suspiciously many messages after one failure: {}",
            e.stats.msgs_sent
        );
        let topo = e.topo().clone();
        let out = forward(&mut e, &topo, &FlowSpec::best_effort(AdId(3), AdId(4)));
        assert!(out.delivered());
    }

    #[test]
    fn packets_never_take_valleys_even_when_shorter() {
        // C1 - R1 - C3 - R2 - C4: the path through the campus C3 is the
        // physically shortest R1->R2 connection if the lateral fails, but
        // it is a valley (down into C3, up out) and must not be used.
        let mut e = converge(testnet());
        let lateral = e.topo().link_between(AdId(1), AdId(2)).unwrap();
        let t = e.now().plus_us(1000);
        e.schedule_link_change(lateral, false, t);
        e.run_to_quiescence();
        let topo = e.topo().clone();
        let out = forward(&mut e, &topo, &FlowSpec::best_effort(AdId(3), AdId(4)));
        let ForwardOutcome::Delivered { path } = out else {
            panic!("not delivered: {out:?}");
        };
        assert!(
            !path[1..path.len() - 1].contains(&AdId(5)),
            "valley via stub: {path:?}"
        );
        // Must go over the backbone.
        assert!(path.contains(&AdId(0)), "{path:?}");
    }

    #[test]
    fn qos_support_gates_transit() {
        let topo = testnet();
        let mut proto = Ecma::hierarchical(&topo);
        proto.qos_classes = 2;
        // Only R1 supports QOS 1; R2 and B do not.
        proto.ad_config[1].supported_qos.push(QosClass(1));
        let mut e = Engine::new(topo, proto);
        e.run_to_quiescence();
        let topo = e.topo().clone();
        // Best-effort still works C1->C2.
        let out = forward(&mut e, &topo, &FlowSpec::best_effort(AdId(3), AdId(4)));
        assert!(out.delivered());
        // QOS 1 cannot cross R2/B: C1->C2 has no supporting path.
        let f1 = FlowSpec::best_effort(AdId(3), AdId(4)).with_qos(QosClass(1));
        let out = forward(&mut e, &topo, &f1);
        assert!(matches!(out, ForwardOutcome::NoRoute { .. }), "{out:?}");
        // But a destination adjacent to R1 is fine: C1 -> C3 via R1.
        let f2 = FlowSpec::best_effort(AdId(3), AdId(5)).with_qos(QosClass(1));
        let out = forward(&mut e, &topo, &f2);
        assert!(out.delivered(), "{out:?}");
    }

    #[test]
    fn dest_filter_limits_transit() {
        let topo = testnet();
        let mut proto = Ecma::hierarchical(&topo);
        // R2 only carries transit toward C2 (AD4): traffic to R2 itself
        // and to AD4 passes, but R2 won't give C4->B transit toward C1.
        proto.ad_config[2].transit_dests = Some(adroute_policy::AdSet::only([AdId(4)]));
        let mut e = Engine::new(topo, proto);
        e.run_to_quiescence();
        let topo = e.topo().clone();
        let out = forward(&mut e, &topo, &FlowSpec::best_effort(AdId(3), AdId(4)));
        assert!(
            out.delivered(),
            "toward the filtered dest must work: {out:?}"
        );
        // C2(4) -> C1(3): R2 refuses to advertise dest 3 to C2, so C2 has
        // no route at all (its only provider is R2).
        let out = forward(&mut e, &topo, &FlowSpec::best_effort(AdId(4), AdId(3)));
        assert!(matches!(out, ForwardOutcome::NoRoute { .. }), "{out:?}");
    }

    #[test]
    fn loop_free_on_generated_hierarchies() {
        for seed in [1u64, 2, 3] {
            let topo = HierarchyConfig {
                lateral_prob: 0.3,
                bypass_prob: 0.2,
                multihome_prob: 0.3,
                seed,
                ..HierarchyConfig::default()
            }
            .generate();
            let proto = Ecma::hierarchical(&topo);
            let mut e = Engine::new(topo, proto);
            e.run_to_quiescence();
            let topo = e.topo().clone();
            let po = PartialOrder::from_levels(&topo);
            for f in crate::forwarding::sample_flows(&topo, 40, seed) {
                let out = forward(&mut e, &topo, &f);
                assert!(
                    !matches!(out, ForwardOutcome::Loop { .. }),
                    "loop for {f}: {:?}",
                    out.path()
                );
                if let ForwardOutcome::Delivered { path } = &out {
                    assert!(po.is_valley_free(path), "valley: {path:?}");
                }
            }
        }
    }

    #[test]
    fn deterministic() {
        let run = || {
            let topo = testnet();
            let proto = Ecma::hierarchical(&topo);
            let mut e = Engine::new(topo, proto);
            let t = e.run_to_quiescence();
            (t, e.stats.msgs_sent, e.stats.bytes_sent)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn solved_ordering_enforces_a_deny_policy_in_forwarding() {
        use adroute_policy::ordering::{solve_ordering, OrderingConstraint};
        // Ring of transit ADs: AD1 refuses to carry AD0 <-> AD2 transit.
        // The authority solves the constraint into ranks; running ECMA
        // under those ranks routes 0->2 the other way around.
        let topo = adroute_topology::generate::ring(4);
        // Note the Permit for AD3: without it the solved ranks leave *both*
        // ring paths as valleys and 0 cannot reach 2 at all — the
        // expressiveness trap of encoding policy in one ordering. The
        // authority must encode willingness as well as refusal.
        let c = [
            OrderingConstraint::Deny {
                via: AdId(1),
                from: AdId(0),
                to: AdId(2),
            },
            OrderingConstraint::Permit {
                via: AdId(3),
                from: AdId(0),
                to: AdId(2),
            },
        ];
        let ranks = match solve_ordering(4, &c) {
            adroute_policy::ordering::OrderingSolution::Satisfiable(r) => r,
            _ => panic!("deny+permit must be satisfiable"),
        };
        let mut proto = Ecma::with_ordering(&topo, ranks);
        for cfg in &mut proto.ad_config {
            cfg.no_transit = false;
        }
        let mut e = Engine::new(topo, proto);
        e.run_to_quiescence();
        let topo = e.topo().clone();
        let out = forward(&mut e, &topo, &FlowSpec::best_effort(AdId(0), AdId(2)));
        let ForwardOutcome::Delivered { path } = out else {
            panic!("undelivered")
        };
        assert_eq!(
            path,
            vec![AdId(0), AdId(3), AdId(2)],
            "the valley at AD1 must be avoided"
        );
    }
}
