//! **E10** (paper §5.1.1 vs §3/§4.3) — convergence after topology change.
//!
//! "If the partial ordering is computed properly … the partial ordering
//! and up-down rule prevent loops, and consequently prevent the count to
//! infinity phenomenon common to other DV algorithms." We partition an AD
//! on cyclic topologies and measure the messages and time each design
//! point needs to re-stabilize. The ECMA ablation (up/down rule on = ECMA,
//! off = naive DV) and the split-horizon ablation are both here.

use adroute_bench::{internet, Table};
use adroute_policy::PolicyDb;
use adroute_protocols::ecma::Ecma;
use adroute_protocols::ls_hbh::LsHbh;
use adroute_protocols::naive_dv::NaiveDv;
use adroute_protocols::path_vector::PathVector;
use adroute_sim::{Engine, Protocol};
use adroute_topology::{generate::ring, AdId, Topology};

/// Converges, then cuts both links of one AD (partition). Returns
/// `(initial msgs, failure msgs, failure reconvergence ms)`.
fn partition<P: Protocol>(topo: Topology, victim: AdId, proto: P) -> (u64, u64, u64) {
    let mut e = Engine::new(topo, proto);
    e.begin_phase("converge");
    e.run_to_quiescence();
    let links: Vec<_> = e.topo().neighbors(victim).map(|(_, l)| l).collect();
    let t = e.now().plus_us(1000);
    for l in &links {
        e.schedule_link_change(*l, false, t);
    }
    e.begin_phase("failure-response");
    let done = e.run_to_quiescence();
    let initial = e.stats.phase_delta("converge").unwrap().msgs_sent;
    let failure = e.stats.phase_delta("failure-response").unwrap().msgs_sent;
    (
        initial,
        failure,
        (done.as_us().saturating_sub(t.as_us())) / 1000,
    )
}

fn main() {
    let mut t = Table::new(
        "E10(a): partition response on rings (count-to-infinity study)",
        &[
            "ring",
            "architecture",
            "initial msgs",
            "failure msgs",
            "reconv ms",
        ],
    );
    for n in [6usize, 10, 14] {
        let victim = AdId((n / 2) as u32);
        let cases: Vec<(&str, (u64, u64, u64))> = vec![
            (
                "naive DV (inf=32)",
                partition(
                    ring(n),
                    victim,
                    NaiveDv {
                        infinity: 32,
                        split_horizon: false,
                        ..NaiveDv::default()
                    },
                ),
            ),
            (
                "naive DV + split horizon",
                partition(
                    ring(n),
                    victim,
                    NaiveDv {
                        infinity: 32,
                        split_horizon: true,
                        ..NaiveDv::default()
                    },
                ),
            ),
            (
                "naive DV (inf=128)",
                partition(
                    ring(n),
                    victim,
                    NaiveDv {
                        infinity: 128,
                        split_horizon: false,
                        ..NaiveDv::default()
                    },
                ),
            ),
            (
                "ECMA up/down rule",
                partition(ring(n), victim, Ecma::all_transit(&ring(n))),
            ),
            (
                "path vector (IDRP)",
                partition(
                    ring(n),
                    victim,
                    PathVector::idrp(PolicyDb::permissive(&ring(n))),
                ),
            ),
            (
                "link state",
                partition(
                    ring(n),
                    victim,
                    LsHbh::new(&ring(n), PolicyDb::permissive(&ring(n))),
                ),
            ),
        ];
        for (name, (i, f, ms)) in cases {
            t.row(&[&n, &name, &i, &f, &ms]);
        }
    }
    t.print();

    // (b) the same event on a realistic internet.
    let mut t = Table::new(
        "E10(b): partitioning a regional AD on a 100-AD internet",
        &["architecture", "failure msgs", "reconv ms"],
    );
    let topo = internet(100, 31);
    let victim = topo
        .ads()
        .find(|a| a.level == adroute_topology::AdLevel::Regional)
        .unwrap()
        .id;
    let (_, f, ms) = partition(
        topo.clone(),
        victim,
        NaiveDv {
            infinity: 32,
            split_horizon: false,
            ..NaiveDv::default()
        },
    );
    t.row(&[&"naive DV", &f, &ms]);
    let (_, f, ms) = partition(topo.clone(), victim, Ecma::hierarchical(&topo));
    t.row(&[&"ECMA", &f, &ms]);
    let (_, f, ms) = partition(
        topo.clone(),
        victim,
        PathVector::idrp(PolicyDb::permissive(&topo)),
    );
    t.row(&[&"path vector", &f, &ms]);
    let (_, f, ms) = partition(
        topo.clone(),
        victim,
        LsHbh::new(&topo, PolicyDb::permissive(&topo)),
    );
    t.row(&[&"link state", &f, &ms]);
    t.print();
    println!(
        "\nReading: naive DV's failure traffic explodes with the infinity bound \
         (count-to-infinity; split horizon only trims it), while ECMA's up/down \
         rule converges in a handful of messages — the Section 5.1.1 claim. Path \
         vector avoids counting via full paths but still explores; link state \
         refloods two LSAs and is done."
    );
}
