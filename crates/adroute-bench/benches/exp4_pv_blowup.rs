//! **E4** (paper §5.2/§5.2.1) — path-vector table blowup under
//! fine-grained policy.
//!
//! "This effectively replicates the routing table per forwarding entity
//! for each QOS, UCI, source combination … this approach does not scale
//! well as policies become more fine grained." We sweep workload
//! granularity and report RIB sizes and control-plane bytes for IDRP,
//! plus the ablation of the paper's mitigation knob (how many routes per
//! destination an AD may advertise).

use adroute_bench::{f2, internet, Table};
use adroute_policy::workload::PolicyWorkload;
use adroute_protocols::path_vector::PathVector;
use adroute_sim::Engine;

fn run(g: u8, max_routes: usize) -> (f64, usize, f64, u64, u64) {
    let topo = internet(60, 11);
    let db = PolicyWorkload::granularity(g.max(1), 11).generate(&topo);
    let mut pv = PathVector::idrp(db);
    pv.max_routes_per_dest = max_routes;
    let mut e = Engine::new(topo.clone(), pv);
    e.run_to_quiescence();
    let rib: Vec<usize> = topo.ad_ids().map(|a| e.router(a).loc_rib.len()).collect();
    let adj: Vec<usize> = topo.ad_ids().map(|a| e.router(a).adj_rib_size()).collect();
    let mean = rib.iter().sum::<usize>() as f64 / rib.len() as f64;
    let max = *rib.iter().max().unwrap();
    let adj_mean = adj.iter().sum::<usize>() as f64 / adj.len() as f64;
    (mean, max, adj_mean, e.stats.msgs_sent, e.stats.bytes_sent)
}

fn main() {
    let mut t = Table::new(
        "E4(a): IDRP RIB growth vs policy granularity (60-AD internet)",
        &[
            "granularity",
            "mean RIB",
            "max RIB",
            "mean adj-RIB-in",
            "ctl msgs",
            "ctl MBytes",
        ],
    );
    for g in [1u8, 2, 4, 8, 12] {
        let (mean, max, adj, msgs, bytes) = run(g, 8);
        t.row(&[
            &g,
            &f2(mean),
            &max,
            &f2(adj),
            &msgs,
            &f2(bytes as f64 / 1e6),
        ]);
    }
    t.print();

    let mut t = Table::new(
        "E4(b): ablation - max advertised routes per destination (granularity 8)",
        &["max routes/dest", "mean RIB", "max RIB", "ctl MBytes"],
    );
    for k in [1usize, 2, 4, 8, 16] {
        let (mean, max, _adj, _msgs, bytes) = run(8, k);
        t.row(&[&k, &f2(mean), &max, &f2(bytes as f64 / 1e6)]);
    }
    t.print();
    println!(
        "\nReading: RIB entries per AD grow with the number of distinct \
         (QOS, UCI, source-scope) classes — the per-class route replication of \
         Section 5.2. Capping routes per destination (table b) caps the state \
         but discards exactly the class-specific routes fine policies need."
    );
}
