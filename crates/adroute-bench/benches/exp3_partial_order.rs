//! **E3** (paper §5.1/§5.1.1) — what a single global partial ordering can
//! and cannot express.
//!
//! Claim 1: "policies of different ADs may not be mutually satisfiable …
//! there may not be a single partial ordering that simultaneously
//! expresses the policies of all ADs." Table (a) measures the probability
//! that a random mixed policy-constraint set is satisfiable by one
//! ordering, versus set size and deny-fraction.
//!
//! Claim 2: even when the ordering exists, ECMA misses legal routes and
//! (for policies outside the ordering's expressive range) violates them.
//! Table (b) scores ECMA against the oracle as the policy workload grows
//! finer.

use adroute_bench::{internet, pct, Table};
use adroute_policy::ordering::{random_constraints, solve_ordering, solve_with_replication};
use adroute_policy::workload::PolicyWorkload;
use adroute_protocols::ecma::Ecma;
use adroute_protocols::forwarding::{sample_flows, score_flows};
use adroute_sim::Engine;

fn satisfiability() {
    let topo = internet(100, 3);
    let mut t = Table::new(
        "E3(a): single-ordering satisfiability of random policy sets",
        &[
            "constraints",
            "deny=25%",
            "deny=50%",
            "deny=75%",
            "deny=100%",
        ],
    );
    let trials = 40;
    for count in [5usize, 10, 20, 40, 80, 160] {
        let mut cells = Vec::new();
        for deny in [0.25f64, 0.5, 0.75, 1.0] {
            let mut sat = 0;
            for seed in 0..trials {
                let cs = random_constraints(&topo, count, deny, seed + 1000 * count as u64);
                if solve_ordering(topo.num_ads(), &cs).is_satisfiable() {
                    sat += 1;
                }
            }
            cells.push(pct(sat as f64 / trials as f64));
        }
        t.row(&[&count, &cells[0], &cells[1], &cells[2], &cells[3]]);
    }
    t.print();
}

fn replication() {
    // The paper's footnote-4 escape hatch: logical cluster replication
    // widens expressiveness at the price of extra network addresses.
    let topo = internet(100, 3);
    let mut t = Table::new(
        "E3(c): logical-cluster replication (footnote 4), 80 constraints, deny=75%",
        &["logical clusters/AD", "satisfiable", "addresses used"],
    );
    let trials = 40;
    for k in [1usize, 2, 3, 4] {
        let mut sat = 0;
        let mut addr_sum = 0usize;
        for seed in 0..trials {
            let cs = random_constraints(&topo, 80, 0.75, 9000 + seed);
            let (ok, nodes) = solve_with_replication(topo.num_ads(), &cs, k);
            if ok {
                sat += 1;
            }
            addr_sum += nodes;
        }
        t.row(&[
            &k,
            &pct(sat as f64 / trials as f64),
            &(addr_sum / trials as usize),
        ]);
    }
    t.print();
}

fn ecma_vs_oracle() {
    let mut t = Table::new(
        "E3(b): ECMA vs oracle as policy granularity grows",
        &["granularity", "availability", "violations", "loops"],
    );
    for g in [0u8, 1, 2, 4, 8] {
        let topo = internet(100, 7);
        let db = if g == 0 {
            PolicyWorkload::structural(7).generate(&topo)
        } else {
            PolicyWorkload::granularity(g, 7).generate(&topo)
        };
        let mut e = Engine::new(topo.clone(), Ecma::hierarchical(&topo));
        e.run_to_quiescence();
        let flows = sample_flows(&topo, 120, 7);
        let s = score_flows(&mut e, &topo, &db, &flows);
        let label = if g == 0 {
            "structural only".to_string()
        } else {
            format!("g={g}")
        };
        t.row(&[
            &label,
            &pct(s.availability()),
            &pct(s.violation_rate()),
            &s.loops,
        ]);
    }
    t.print();
    println!(
        "\nReading: with structural policies (stubs refuse transit) the ordering \
         expresses everything and ECMA is clean; as source/UCI/QOS-specific terms \
         appear, ECMA cannot see them — availability drops and violations appear, \
         while satisfiability of one global ordering (table a) collapses as deny \
         constraints densify. Both match Section 5.1.1's objections."
    );
}

fn main() {
    satisfiability();
    replication();
    ecma_vs_oracle();
}
