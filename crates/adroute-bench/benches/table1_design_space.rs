//! **Table 1** — the design space for inter-AD routing.
//!
//! Part (a) reprints the paper's 2×2×2 matrix with the proposal occupying
//! each viable cell and the reason the remaining cells are excluded
//! (paper Section 5.5). Part (b) *measures* the capability claims the
//! paper makes per design point, by running every architecture on the
//! same internet and policy workload and scoring it against the oracle.

use adroute_bench::{internet, pct, Table};
use adroute_core::network::OpenError;
use adroute_core::router::converge_control_plane;
use adroute_core::{OrwgNetwork, Strategy};
use adroute_policy::legality::{legal_route, legal_route_with, route_is_legal};
use adroute_policy::workload::PolicyWorkload;
use adroute_policy::{FlowSpec, RouteSelection};
use adroute_protocols::ecma::Ecma;
use adroute_protocols::forwarding::{sample_flows, score_flows, FlowScore};
use adroute_protocols::ls_hbh::LsHbh;
use adroute_protocols::naive_dv::NaiveDv;
use adroute_protocols::path_vector::PathVector;
use adroute_sim::Engine;
use adroute_topology::AdId;

fn matrix() {
    let mut t = Table::new(
        "Table 1(a): the design space (paper Section 5)",
        &[
            "algorithm",
            "decision",
            "policy expression",
            "occupant / verdict",
        ],
    );
    t.row(&[
        &"distance vector",
        &"hop-by-hop",
        &"topology",
        &"NIST/ECMA partial ordering (5.1.1)",
    ]);
    t.row(&[
        &"distance vector",
        &"hop-by-hop",
        &"policy terms",
        &"IDRP, BGP-2 (5.2.1)",
    ]);
    t.row(&[
        &"link state",
        &"hop-by-hop",
        &"policy terms",
        &"per-source spanning trees (5.3)",
    ]);
    t.row(&[
        &"link state",
        &"source",
        &"policy terms",
        &"Clark/ORWG - the paper's pick (5.4.1)",
    ]);
    t.row(&[
        &"link state",
        &"hop-by-hop",
        &"topology",
        &"excluded: flooding vs info-hiding (5.5.1)",
    ]);
    t.row(&[
        &"link state",
        &"source",
        &"topology",
        &"excluded: same (5.5.1)",
    ]);
    t.row(&[
        &"distance vector",
        &"source",
        &"topology",
        &"excluded: source needs full info (5.5.2)",
    ]);
    t.row(&[
        &"distance vector",
        &"source",
        &"policy terms",
        &"excluded: little gain w/o link state (5.5.2)",
    ]);
    t.print();
}

/// Measures the fraction of imposable source criteria ("avoid this transit
/// AD") an architecture can actually honor.
fn probe_source_policy(
    flows: &[FlowSpec],
    topo: &adroute_topology::Topology,
    db: &adroute_policy::PolicyDb,
    mut route_of: impl FnMut(&FlowSpec, &RouteSelection) -> Option<Vec<AdId>>,
) -> f64 {
    let mut applicable = 0;
    let mut honored = 0;
    for f in flows {
        let Some(base) = legal_route(topo, db, f) else {
            continue;
        };
        if base.path.len() < 3 {
            continue;
        }
        let avoid = base.path[1];
        let sel = RouteSelection::avoiding([avoid]);
        let mut stats = Default::default();
        if legal_route_with(topo, db, f, &sel, &mut stats).is_none() {
            continue; // no legal alternative exists; not a fair probe
        }
        applicable += 1;
        if let Some(path) = route_of(f, &sel) {
            if path.first() == Some(&f.src)
                && path.last() == Some(&f.dst)
                && !path[1..path.len().saturating_sub(1)].contains(&avoid)
            {
                honored += 1;
            }
        }
    }
    if applicable == 0 {
        1.0
    } else {
        honored as f64 / applicable as f64
    }
}

fn main() {
    matrix();

    let topo = internet(100, 1990);
    let db = PolicyWorkload::default_mix(1990).generate(&topo);
    let flows = sample_flows(&topo, 120, 1990);
    let mut t = Table::new(
        "Table 1(b): measured capabilities per design point",
        &[
            "architecture",
            "availability",
            "violations",
            "loops",
            "src criteria honored",
            "src criteria private",
        ],
    );
    let mut push = |name: &str, s: &FlowScore, honored: f64, private: bool| {
        t.row(&[
            &name,
            &pct(s.availability()),
            &pct(s.violation_rate()),
            &s.loops,
            &pct(honored),
            &(if private { "yes" } else { "no" }),
        ]);
    };

    // naive DV: no policy of any kind.
    {
        let mut e = Engine::new(topo.clone(), NaiveDv::default());
        e.run_to_quiescence();
        let s = score_flows(&mut e, &topo, &db, &flows);
        push("naive DV (baseline)", &s, 0.0, false);
    }
    // ECMA: source policy only through the global ordering.
    {
        let mut e = Engine::new(topo.clone(), Ecma::hierarchical(&topo));
        e.run_to_quiescence();
        let s = score_flows(&mut e, &topo, &db, &flows);
        push("ECMA: DV+hbh+topology", &s, 0.0, false);
    }
    // IDRP: sources choose among advertised routes; criteria cannot be
    // pushed into the network.
    {
        let mut e = Engine::new(topo.clone(), PathVector::idrp(db.clone()));
        e.run_to_quiescence();
        let s = score_flows(&mut e, &topo, &db, &flows);
        let honored = probe_source_policy(&flows, &topo, &db, |f, sel| {
            // Best the source can do: filter its received routes.
            e.router(f.src)
                .best_match(f)
                .map(|r| {
                    let mut p = vec![f.src];
                    p.extend_from_slice(&r.path);
                    p
                })
                .filter(|p| sel.accepts(p, 0))
        });
        push("IDRP: PV+hbh+terms", &s, honored, false);
    }
    // LS hop-by-hop: consistency forces all ADs to know source criteria.
    {
        let mut e = Engine::new(topo.clone(), LsHbh::new(&topo, db.clone()));
        e.run_to_quiescence();
        let s = score_flows(&mut e, &topo, &db, &flows);
        push("LS+hbh+terms", &s, 0.0, false);
    }
    // ORWG: the source synthesizes under private criteria.
    {
        let engine = converge_control_plane(topo.clone(), db.clone());
        let mut net = OrwgNetwork::from_engine(&engine, Strategy::Cached { capacity: 512 }, 8192);
        let mut s = FlowScore {
            flows: flows.len(),
            ..Default::default()
        };
        for f in &flows {
            let oracle = legal_route(&topo, &db, f);
            if oracle.is_some() {
                s.legal_exists += 1;
            }
            match net.open(f) {
                Ok(setup) => {
                    s.delivered += 1;
                    if let Some(o) = &oracle {
                        s.compliant_of_legal += 1;
                        let c = route_is_legal(&topo, &db, f, &setup.route).expect("legal");
                        s.cost_sum += c;
                        s.oracle_cost_sum += o.cost;
                    }
                }
                Err(OpenError::NoRoute) => {}
                Err(e) => panic!("{e:?}"),
            }
        }
        let honored = probe_source_policy(&flows, &topo, &db, |f, sel| {
            net.server_mut(f.src).set_selection(sel.clone());
            let r = net.policy_route(f);
            net.server_mut(f.src)
                .set_selection(RouteSelection::unconstrained());
            r
        });
        push("ORWG: LS+source+terms", &s, honored, true);
    }
    t.print();
    println!(
        "\nReading: availability = flows with a legal route delivered policy-compliantly; \
         'src criteria honored' = fraction of imposed avoid-AD criteria enforceable \
         (probe: avoid the default route's first transit AD when a legal alternative exists)."
    );
}
