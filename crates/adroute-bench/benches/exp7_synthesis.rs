//! **E7** (paper §6, first bullet) — route synthesis strategies.
//!
//! "Precomputation of all policy routes in a large internet is
//! computationally intractable, while on demand computation may introduce
//! excessive latency at setup time. Consequently, a combination of
//! precomputation and on-demand computation should be used … Simulation of
//! route synthesis for realistic internets should be conducted to explore
//! tradeoffs in synthesis strategies." This is that simulation.
//!
//! A Zipf-like request stream (some destinations popular, a long tail)
//! drives each strategy; we report search work, setup-time search rate
//! (the latency proxy), memory, and the refresh cost after a policy
//! change.

use adroute_bench::{internet, pct, Table};
use adroute_core::{OrwgNetwork, Strategy};
use adroute_policy::workload::PolicyWorkload;
use adroute_policy::{FlowSpec, TransitPolicy};
use adroute_topology::AdId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A skewed request stream: 70% of requests to 10% of destinations.
fn request_stream(topo: &adroute_topology::Topology, count: usize, seed: u64) -> Vec<FlowSpec> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = topo.num_ads() as u32;
    let hot: Vec<u32> = (0..n).filter(|x| x % 10 == 3).collect();
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        let src = rng.gen_range(0..n);
        let dst = if rng.gen_bool(0.7) && !hot.is_empty() {
            hot[rng.gen_range(0..hot.len())]
        } else {
            rng.gen_range(0..n)
        };
        if src != dst {
            out.push(FlowSpec::best_effort(AdId(src), AdId(dst)));
        }
    }
    out
}

fn main() {
    let topo = internet(150, 17);
    let db = PolicyWorkload::default_mix(17).generate(&topo);
    let stream = request_stream(&topo, 2000, 17);

    // Popular classes each source would precompute: flows it actually
    // originates toward hot destinations.
    let strategies: Vec<(&str, Strategy, bool)> = vec![
        ("on-demand", Strategy::OnDemand, false),
        ("LRU cache 64", Strategy::Cached { capacity: 64 }, false),
        ("LRU cache 1024", Strategy::Cached { capacity: 1024 }, false),
        (
            "hybrid (pre+LRU 64)",
            Strategy::Hybrid { capacity: 64 },
            true,
        ),
    ];

    let mut t = Table::new(
        "E7: synthesis strategy trade-offs (150 ADs, 2000 skewed requests)",
        &[
            "strategy",
            "searches",
            "states settled",
            "search@request",
            "precomp hits",
            "cache hits",
            "routes stored",
            "policy-change refresh",
        ],
    );

    for (name, strategy, precompute) in strategies {
        let mut net = OrwgNetwork::converged_with(&topo, &db, strategy, 65536);
        if precompute {
            // Each AD precomputes its own flows to the hot destinations.
            let mut per_src: std::collections::BTreeMap<AdId, Vec<FlowSpec>> = Default::default();
            for f in &stream {
                if f.dst.0 % 10 == 3 {
                    per_src.entry(f.src).or_default().push(*f);
                }
            }
            for (src, mut flows) in per_src {
                flows.sort_by_key(|f| (f.dst, f.qos, f.uci));
                flows.dedup();
                net.server_mut(src).precompute(&flows);
            }
        }
        let baseline_searches = net.total_searches();
        for f in &stream {
            let _ = net.policy_route(f);
        }
        let searches = net.total_searches() - baseline_searches;
        let settled: u64 = topo.ad_ids().map(|a| net.server(a).stats.settled).sum();
        let pre_hits: u64 = topo
            .ad_ids()
            .map(|a| net.server(a).stats.precomputed_hits)
            .sum();
        let cache_hits: u64 = topo.ad_ids().map(|a| net.server(a).stats.cache_hits).sum();
        let stored: usize = topo
            .ad_ids()
            .map(|a| net.server(a).precomputed_len() + net.server(a).cached_len())
            .sum();
        // Staleness: change one transit AD's policy, count refresh work.
        let before = net.total_searches();
        let victim = topo.ads().find(|a| a.role.offers_transit()).unwrap().id;
        net.change_policy(TransitPolicy::deny_all(victim));
        let refresh = net.total_searches() - before;
        t.row(&[
            &name,
            &searches,
            &settled,
            &pct(searches as f64 / stream.len() as f64),
            &pre_hits,
            &cache_hits,
            &stored,
            &refresh,
        ]);
    }
    t.print();
    println!(
        "\nReading: 'search@request' is the fraction of requests that had to run a \
         full policy-constrained search at setup time (the latency proxy). Pure \
         on-demand pays it always; big caches pay it only on cold classes; the \
         hybrid answers hot classes from precomputation but pays an up-front and \
         per-policy-change refresh bill — precisely the trade-off the paper asks \
         simulations to explore."
    );
}
