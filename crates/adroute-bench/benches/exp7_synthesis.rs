//! **E7** (paper §6, first bullet) — route synthesis strategies.
//!
//! "Precomputation of all policy routes in a large internet is
//! computationally intractable, while on demand computation may introduce
//! excessive latency at setup time. Consequently, a combination of
//! precomputation and on-demand computation should be used … Simulation of
//! route synthesis for realistic internets should be conducted to explore
//! tradeoffs in synthesis strategies." This is that simulation.
//!
//! A Zipf-like request stream (some destinations popular, a long tail)
//! drives each strategy; we report search work, setup-time search rate
//! (the latency proxy), memory, and the refresh cost after a policy
//! change.

use adroute_bench::{internet, pct, Table};
use adroute_core::{OrwgNetwork, Strategy, ViewMaintenance};
use adroute_policy::workload::PolicyWorkload;
use adroute_policy::{FlowSpec, TransitPolicy};
use adroute_topology::AdId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A skewed request stream: 70% of requests to 10% of destinations.
fn request_stream(topo: &adroute_topology::Topology, count: usize, seed: u64) -> Vec<FlowSpec> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = topo.num_ads() as u32;
    let hot: Vec<u32> = (0..n).filter(|x| x % 10 == 3).collect();
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        let src = rng.gen_range(0..n);
        let dst = if rng.gen_bool(0.7) && !hot.is_empty() {
            hot[rng.gen_range(0..hot.len())]
        } else {
            rng.gen_range(0..n)
        };
        if src != dst {
            out.push(FlowSpec::best_effort(AdId(src), AdId(dst)));
        }
    }
    out
}

fn main() {
    let topo = internet(150, 17);
    let db = PolicyWorkload::default_mix(17).generate(&topo);
    let stream = request_stream(&topo, 2000, 17);

    // Popular classes each source would precompute: flows it actually
    // originates toward hot destinations.
    let strategies: Vec<(&str, Strategy, bool)> = vec![
        ("on-demand", Strategy::OnDemand, false),
        ("LRU cache 64", Strategy::Cached { capacity: 64 }, false),
        ("LRU cache 1024", Strategy::Cached { capacity: 1024 }, false),
        (
            "hybrid (pre+LRU 64)",
            Strategy::Hybrid { capacity: 64 },
            true,
        ),
    ];

    let mut t = Table::new(
        "E7: synthesis strategy trade-offs (150 ADs, 2000 skewed requests)",
        &[
            "strategy",
            "searches",
            "states settled",
            "search@request",
            "precomp hits",
            "cache hits",
            "routes stored",
            "invalidated@change",
            "refresh searches",
        ],
    );

    for (name, strategy, precompute) in strategies {
        let mut net = OrwgNetwork::converged_with(&topo, &db, strategy, 65536);
        if precompute {
            // Each AD precomputes its own flows to the hot destinations.
            let mut per_src: std::collections::BTreeMap<AdId, Vec<FlowSpec>> = Default::default();
            for f in &stream {
                if f.dst.0 % 10 == 3 {
                    per_src.entry(f.src).or_default().push(*f);
                }
            }
            for (src, mut flows) in per_src {
                flows.sort_by_key(|f| (f.dst, f.qos, f.uci));
                flows.dedup();
                net.server_mut(src).precompute(&flows);
            }
        }
        let baseline_searches = net.total_searches();
        for f in &stream {
            let _ = net.policy_route(f);
        }
        let searches = net.total_searches() - baseline_searches;
        let settled: u64 = topo.ad_ids().map(|a| net.server(a).stats.settled).sum();
        let pre_hits: u64 = topo
            .ad_ids()
            .map(|a| net.server(a).stats.precomputed_hits)
            .sum();
        let cache_hits: u64 = topo.ad_ids().map(|a| net.server(a).stats.cache_hits).sum();
        let stored: usize = topo
            .ad_ids()
            .map(|a| net.server(a).precomputed_len() + net.server(a).cached_len())
            .sum();
        // Staleness: change one transit AD's policy, count refresh work.
        // Setup-time searches never move here — the refresh bill is paid
        // by the background precompute counters plus the invalidations
        // that deferred work to the next request.
        let before_pre = net.total_precompute_searches();
        let before_inv = net.aggregate_synth_stats().entries_invalidated;
        let victim = topo.ads().find(|a| a.role.offers_transit()).unwrap().id;
        net.change_policy(TransitPolicy::deny_all(victim));
        let agg = net.aggregate_synth_stats();
        let refresh = net.total_precompute_searches() - before_pre;
        let invalidated = agg.entries_invalidated - before_inv;
        t.row(&[
            &name,
            &searches,
            &settled,
            &pct(searches as f64 / stream.len() as f64),
            &pre_hits,
            &cache_hits,
            &stored,
            &invalidated,
            &refresh,
        ]);
    }
    t.print();
    println!(
        "\nReading: 'search@request' is the fraction of requests that had to run a \
         full policy-constrained search at setup time (the latency proxy). Pure \
         on-demand pays it always; big caches pay it only on cold classes; the \
         hybrid answers hot classes from precomputation but pays an up-front and \
         per-policy-change refresh bill (background searches, never setup-time \
         ones) — precisely the trade-off the paper asks simulations to explore."
    );

    incremental_vs_flush();
}

/// E7b: the view-maintenance trade-off at scale. One link fails on a
/// large internet; the incremental path invalidates only the stored
/// routes that crossed it, while the flush oracle drops everything and
/// pays the whole synthesis bill again on the next request wave.
fn incremental_vs_flush() {
    let big = internet(700, 23);
    assert!(big.num_ads() >= 500, "E7b needs a large internet");
    let db = PolicyWorkload::structural(23).generate(&big);
    let stream = request_stream(&big, 4000, 23);
    // A trunk link between two well-connected transit ADs: high fan-in on
    // both sides means plenty of cached routes actually cross it.
    let cut = big
        .links()
        .filter(|l| l.up)
        .max_by_key(|l| {
            (
                big.neighbors(l.a).count() + big.neighbors(l.b).count(),
                std::cmp::Reverse(l.id.index()),
            )
        })
        .map(|l| l.id)
        .expect("a generated internet has links");

    let mut t = Table::new(
        &format!(
            "E7b: single link failure, incremental vs flush view maintenance \
             ({} ADs, {} links, cache-warm from 4000 requests)",
            big.num_ads(),
            big.num_links()
        ),
        &[
            "view maintenance",
            "routes stored",
            "invalidated",
            "revalidations",
            "kept in place",
            "re-request searches",
            "fail_link time",
        ],
    );
    for (name, mode) in [
        ("incremental", ViewMaintenance::Incremental),
        ("flush (oracle)", ViewMaintenance::Flush),
    ] {
        let mut net =
            OrwgNetwork::converged_with(&big, &db, Strategy::Cached { capacity: 8192 }, 65536);
        net.set_view_maintenance(mode);
        for f in &stream {
            let _ = net.policy_route(f);
        }
        let stored: usize = big.ad_ids().map(|a| net.server(a).cached_len()).sum();
        let base = net.aggregate_synth_stats();
        let t0 = std::time::Instant::now();
        net.fail_link(cut);
        let fail_time = t0.elapsed();
        let agg = net.aggregate_synth_stats();
        let before_searches = net.total_searches();
        for f in &stream {
            let _ = net.policy_route(f);
        }
        let re_searches = net.total_searches() - before_searches;
        t.row(&[
            &name,
            &stored,
            &(agg.entries_invalidated - base.entries_invalidated),
            &(agg.revalidations - base.revalidations),
            &(agg.revalidate_hits - base.revalidate_hits),
            &re_searches,
            &format!("{fail_time:.2?}"),
        ]);
    }
    t.print();
    println!(
        "\nReading: both modes answer every request identically (the flush path is \
         the behavioral oracle), but the incremental path touches only the entries \
         whose route crossed the failed link — 'revalidations' re-checked a stored \
         route in place and 'kept in place' of those survived at unchanged cost, so \
         the re-request wave repays only what was actually lost."
    );
}
