//! **Figure 1** — "Example Internet Topology".
//!
//! The paper's figure shows a backbone/regional/campus hierarchy augmented
//! with lateral and bypass links. This target shows the generator
//! realizing that topology class across scales: composition by level and
//! role, link-kind mix, degree and path statistics, and the property the
//! paper leans on — hierarchies with lateral/bypass augmentation stay
//! valley-free-connected.

use adroute_bench::{f2, pct, Table};
use adroute_topology::{algo, generate::HierarchyConfig, AdLevel, PartialOrder};

fn main() {
    let mut t = Table::new(
        "Figure 1: generated internets (hierarchy + lateral + bypass)",
        &[
            "ADs",
            "links",
            "hier",
            "lateral",
            "bypass",
            "stubs",
            "multi-homed",
            "transit",
            "hybrid",
            "mean deg",
            "diam",
            "vf-reach",
        ],
    );
    for (scale, seed) in [(30usize, 1u64), (100, 2), (250, 3), (500, 4), (1000, 5)] {
        let cfg = HierarchyConfig {
            lateral_prob: 0.25,
            bypass_prob: 0.1,
            multihome_prob: 0.2,
            ..HierarchyConfig::with_approx_size(scale, seed)
        };
        let topo = cfg.generate();
        let (h, l, b) = topo.link_kind_counts();
        let (s, m, tr, hy) = topo.role_counts();
        let n = topo.num_ads();
        let mean_deg = 2.0 * topo.num_links() as f64 / n as f64;
        // Diameter approximation: max BFS eccentricity from a few seeds.
        let mut diam = 0;
        for start in [0u32, (n / 2) as u32, (n - 1) as u32] {
            let (hops, _) = algo::bfs_tree(&topo, adroute_topology::AdId(start));
            diam = diam.max(
                hops.iter()
                    .copied()
                    .filter(|&x| x != u32::MAX)
                    .max()
                    .unwrap_or(0),
            );
        }
        // Valley-free reachability over sampled campus pairs.
        let po = PartialOrder::from_levels(&topo);
        let campuses: Vec<_> = topo
            .ads()
            .filter(|a| a.level == AdLevel::Campus)
            .map(|a| a.id)
            .collect();
        let mut ok = 0;
        let mut total = 0;
        for (i, &a) in campuses.iter().enumerate().take(12) {
            for &bb in campuses.iter().skip(i + 1).take(12) {
                total += 1;
                if po.valley_free_reachable(&topo, a, bb) {
                    ok += 1;
                }
            }
        }
        let vf = if total == 0 {
            1.0
        } else {
            ok as f64 / total as f64
        };
        t.row(&[
            &n,
            &topo.num_links(),
            &h,
            &l,
            &b,
            &s,
            &m,
            &tr,
            &hy,
            &f2(mean_deg),
            &diam,
            &pct(vf),
        ]);
    }
    t.print();
    println!(
        "\nReading: 'vf-reach' = fraction of sampled campus pairs connected by a \
         valley-free path under the level ordering — the connectivity ECMA can use. \
         The paper's Figure 1 shape (hierarchy dominant, persistent lateral and \
         bypass links at every scale) is preserved."
    );
}
