//! **E11** (paper §2.1/§3) — integrity with non-hierarchical links.
//!
//! "Inter-AD routing protocols should work efficiently for the general
//! hierarchical case, but they must accommodate lateral and bypass links
//! in a graceful manner … functionally, the integrity of the routing must
//! be maintained in the presence of non-hierarchical structures." And for
//! EGP: "there can be no cycles in the EGP graph … an unreasonable
//! restriction for a global internet."
//!
//! We sweep the density of lateral/bypass links and measure (a) that every
//! architecture keeps loop-free, policy-compliant delivery, and (b) what
//! the EGP-style tree restriction costs: an EGP internet can only use the
//! hierarchical links, so the extra connectivity is wasted — measured as
//! path stretch and unreachability versus the full graph.

use adroute_bench::{f2, pct, Table};
use adroute_policy::workload::PolicyWorkload;
use adroute_protocols::ecma::Ecma;
use adroute_protocols::forwarding::{sample_flows, score_flows};
use adroute_protocols::ls_hbh::LsHbh;
use adroute_protocols::naive_dv::NaiveDv;
use adroute_protocols::path_vector::PathVector;
use adroute_sim::Engine;
use adroute_topology::{algo, AdId, HierarchyConfig, LinkKind, Topology};

/// Mean shortest-path cost over sampled pairs; `None` entries (cut pairs)
/// are counted separately.
fn path_stats(topo: &Topology, pairs: &[(AdId, AdId)]) -> (f64, usize) {
    let mut total = 0u64;
    let mut reached = 0usize;
    let mut cut = 0usize;
    for &(a, b) in pairs {
        let (cost, _) = algo::dijkstra(topo, a);
        match cost[b.index()] {
            algo::PathCost::Finite(c) => {
                total += c;
                reached += 1;
            }
            algo::PathCost::Unreachable => cut += 1,
        }
    }
    let mean = if reached == 0 {
        0.0
    } else {
        total as f64 / reached as f64
    };
    (mean, cut)
}

fn main() {
    let mut integrity = Table::new(
        "E11(a): integrity as lateral/bypass density grows (100-AD internet)",
        &[
            "lateral p",
            "bypass p",
            "links",
            "arch",
            "loops",
            "violations",
            "availability",
        ],
    );
    let mut egp = Table::new(
        "E11(b): the EGP tree restriction — what ignoring non-tree links costs",
        &[
            "lateral p",
            "bypass p",
            "extra links",
            "mean cost (full)",
            "mean cost (tree)",
            "stretch",
            "cut pairs (tree)",
        ],
    );

    for (lat, byp) in [(0.0f64, 0.0f64), (0.15, 0.05), (0.3, 0.15), (0.5, 0.3)] {
        let topo = HierarchyConfig {
            lateral_prob: lat,
            bypass_prob: byp,
            multihome_prob: 0.2,
            ..HierarchyConfig::with_approx_size(100, 37)
        }
        .generate();
        let db = PolicyWorkload::default_mix(37).generate(&topo);
        let flows = sample_flows(&topo, 80, 37);

        let mut ecma = Engine::new(topo.clone(), Ecma::hierarchical(&topo));
        ecma.run_to_quiescence();
        let s = score_flows(&mut ecma, &topo, &db, &flows);
        integrity.row(&[
            &f2(lat),
            &f2(byp),
            &topo.num_links(),
            &"ECMA",
            &s.loops,
            &pct(s.violation_rate()),
            &pct(s.availability()),
        ]);

        let mut pv = Engine::new(topo.clone(), PathVector::idrp(db.clone()));
        pv.run_to_quiescence();
        let s = score_flows(&mut pv, &topo, &db, &flows);
        integrity.row(&[
            &f2(lat),
            &f2(byp),
            &topo.num_links(),
            &"IDRP",
            &s.loops,
            &pct(s.violation_rate()),
            &pct(s.availability()),
        ]);

        let mut ls = Engine::new(topo.clone(), LsHbh::new(&topo, db.clone()));
        ls.run_to_quiescence();
        let s = score_flows(&mut ls, &topo, &db, &flows);
        integrity.row(&[
            &f2(lat),
            &f2(byp),
            &topo.num_links(),
            &"LS/ORWG",
            &s.loops,
            &pct(s.violation_rate()),
            &pct(s.availability()),
        ]);

        // The running EGP protocol (tree-restricted DV): its availability
        // decays as connectivity moves into links it cannot use.
        let mut egp_dv = Engine::new(topo.clone(), NaiveDv::egp());
        egp_dv.run_to_quiescence();
        let s = score_flows(&mut egp_dv, &topo, &db, &flows);
        integrity.row(&[
            &f2(lat),
            &f2(byp),
            &topo.num_links(),
            &"EGP (tree DV)",
            &s.loops,
            &pct(s.violation_rate()),
            &pct(s.availability()),
        ]);

        // EGP contrast: disable every non-hierarchical link (the acyclic
        // "EGP graph") and compare shortest paths.
        let pairs: Vec<(AdId, AdId)> = flows.iter().map(|f| (f.src, f.dst)).collect();
        let (full_mean, _) = path_stats(&topo, &pairs);
        let mut tree = topo.clone();
        let mut extra = 0;
        for l in topo.links() {
            if l.kind != LinkKind::Hierarchical {
                tree.set_link_up(l.id, false);
                extra += 1;
            }
        }
        let (tree_mean, cut) = path_stats(&tree, &pairs);
        let stretch = if full_mean > 0.0 {
            tree_mean / full_mean
        } else {
            1.0
        };
        egp.row(&[
            &f2(lat),
            &f2(byp),
            &extra,
            &f2(full_mean),
            &f2(tree_mean),
            &f2(stretch),
            &cut,
        ]);
    }
    integrity.print();
    egp.print();
    println!(
        "\nReading: loop counts stay zero and policy-aware availability holds as \
         non-hierarchical links densify — the 'graceful accommodation' the paper \
         requires. The EGP-style restriction wastes exactly those links: path \
         costs inflate and (with multi-homing counted as non-tree) some pairs \
         lose connectivity entirely, the Section 3 argument for retiring EGP."
    );
}
