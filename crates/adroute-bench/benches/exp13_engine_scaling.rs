//! **E13** (paper §2.2) — discrete-event core scaling to paper size.
//!
//! The paper's operating model targets ~10⁵ ADs. This experiment sweeps
//! internet size up to that target under the cheap gossip flood (whose
//! handlers are a few array reads, so the figure is the engine's own
//! ceiling) and reports wall-clock and events/sec for the sequential
//! engine, the region-parallel engine, and a compute-bound parallel run
//! (synthetic per-delivery work modeling real route computation). The
//! parallel engine's journaling and sequential commit replay cost a
//! roughly constant overhead per event: on an engine-bound workload
//! that overhead is the whole story, while on a compute-bound workload
//! it amortizes and the lanes scale with available cores (the ratio on
//! a single-CPU host measures pure overhead — see EXPERIMENTS.md E13).

use std::time::Instant;

use adroute_bench::{f2, internet, Table};
use adroute_protocols::gossip::Gossip;
use adroute_sim::Engine;
use adroute_topology::Topology;

const WORKERS: usize = 8;
const COST: u32 = 2_000;

fn timed(topo: &Topology, g: Gossip, workers: Option<usize>) -> (u64, f64) {
    let mut e = Engine::new(topo.clone(), g);
    // The 10^5-AD sweep legitimately dispatches more than the default
    // 50M-event runaway budget.
    e.max_events = 500_000_000;
    let t0 = Instant::now();
    match workers {
        None => e.run_to_quiescence(),
        Some(w) => e.run_to_quiescence_parallel(w),
    };
    (e.stats.events, t0.elapsed().as_secs_f64())
}

fn main() {
    let mut t = Table::new(
        "E13: engine scaling on the gossip flood (8 origins x 4 rounds)",
        &[
            "ADs",
            "links",
            "events",
            "seq ms",
            "seq ev/s",
            "par ms",
            "par ev/s",
            "par/seq (costly)",
        ],
    );
    for scale in [1_000usize, 10_000, 100_000] {
        let topo = internet(scale, 1990);
        let g = Gossip {
            origins: 8,
            rounds: 4,
            period_us: 50_000,
            work: 0,
        };
        let (events, seq_s) = timed(&topo, g, None);
        let (_, par_s) = timed(&topo, g, Some(WORKERS));
        // The compute-bound pair burns COST mixing iterations per
        // delivery; at 10^5 ADs that is minutes of synthetic spinning
        // for no additional signal, so it stops at 10^4.
        let costly_ratio = if scale <= 10_000 {
            let costly = Gossip { work: COST, ..g };
            let (_, cseq_s) = timed(&topo, costly, None);
            let (_, cpar_s) = timed(&topo, costly, Some(WORKERS));
            f2(cseq_s / cpar_s)
        } else {
            "-".to_string()
        };
        t.row(&[
            &topo.num_ads(),
            &topo.num_links(),
            &events,
            &f2(seq_s * 1000.0),
            &((events as f64 / seq_s) as u64),
            &f2(par_s * 1000.0),
            &((events as f64 / par_s) as u64),
            &costly_ratio,
        ]);
    }
    t.print();
    println!(
        "\nReading: sequential events/sec is the engine ceiling (zero-allocation \
         dispatch, no observer). The parallel column pays journaling + commit \
         replay per event; the costly ratio shows that overhead amortizing once \
         handlers do real work ({COST} mixing iterations per delivery). On a \
         multi-core host the costly ratio exceeds 1 and grows toward the region \
         count; on a 1-CPU host it measures pure overhead."
    );
}
