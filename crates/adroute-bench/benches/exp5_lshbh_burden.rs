//! **E5** (paper §5.3) — the transit burden of link-state hop-by-hop
//! routing, versus source routing.
//!
//! "An AD potentially must compute a separate spanning tree for each
//! potential source of traffic. Hence, the replicated nature of this
//! computation may become an excessive burden for transit ADs." We route
//! the same flow set through both architectures and count, at every AD,
//! policy-constrained route computations and per-class FIB state. Under
//! ORWG, "since the source specifies the next-AD hop, independent route
//! computations by transit ADs are not required" — transit ADs only
//! validate setups.

use adroute_bench::{internet, Table};
use adroute_core::{OrwgNetwork, Strategy};
use adroute_policy::workload::PolicyWorkload;
use adroute_protocols::forwarding::{forward, sample_flows};
use adroute_protocols::ls_hbh::LsHbh;
use adroute_sim::Engine;

fn main() {
    let topo = internet(100, 5);
    let db = PolicyWorkload::default_mix(5).generate(&topo);

    let mut t = Table::new(
        "E5: transit-AD burden vs number of distinct traffic classes",
        &[
            "classes",
            "LS-HBH computations",
            "LS-HBH max/AD",
            "LS-HBH FIB entries",
            "ORWG src searches",
            "ORWG transit searches",
            "ORWG validations",
        ],
    );

    for classes in [10usize, 25, 50, 100, 200] {
        let flows = sample_flows(&topo, classes, 5);

        // --- LS hop-by-hop ------------------------------------------
        let mut ls = Engine::new(topo.clone(), LsHbh::new(&topo, db.clone()));
        ls.run_to_quiescence();
        for f in &flows {
            let _ = forward(&mut ls, &topo, f);
        }
        let comp: Vec<u64> = topo
            .ad_ids()
            .map(|a| ls.router(a).route_computations)
            .collect();
        let fib: usize = topo.ad_ids().map(|a| ls.router(a).fib_entries()).sum();
        let total: u64 = comp.iter().sum();
        let max = *comp.iter().max().unwrap();

        // --- ORWG -----------------------------------------------------
        let mut net =
            OrwgNetwork::converged_with(&topo, &db, Strategy::Cached { capacity: 4096 }, 65536);
        let mut validations = 0u64;
        for f in &flows {
            if let Ok(setup) = net.open(f) {
                validations += setup.validations as u64;
            }
        }
        let src_searches: u64 = flows
            .iter()
            .map(|f| f.src)
            .collect::<std::collections::BTreeSet<_>>()
            .iter()
            .map(|&a| net.server(a).stats.searches)
            .sum();
        let transit_searches = net.total_searches() - src_searches;

        t.row(&[
            &classes,
            &total,
            &max,
            &fib,
            &src_searches,
            &transit_searches,
            &validations,
        ]);
    }
    t.print();
    println!(
        "\nReading: LS-HBH repeats the policy-constrained search at *every* AD a \
         packet crosses (computations >> classes, growing with path length); the \
         ORWG source computes exactly once per class and transit ADs perform zero \
         route computations — only O(1) setup validations."
    );
}
