//! **E6** (paper §5.4.1) — route setup vs per-packet overhead.
//!
//! "To avoid the latency of the Policy Route setup process and the
//! header-length overhead of the source route … a handle is assigned at
//! the time that the Policy Route is set up and successive data packets
//! use that handle." Table (a) regenerates the amortization curve: mean
//! header bytes per packet for (i) handle forwarding including its setup
//! cost and (ii) carrying the full source route in every packet, as flow
//! length grows. Table (b) sweeps the gateway handle-cache capacity under
//! many concurrent flows: evictions force re-setups, the state/overhead
//! trade-off of Section 6's "policy gateway state management".

use adroute_bench::{f2, internet, Table};
use adroute_core::network::SendError;
use adroute_core::{DataError, OrwgNetwork, Strategy};
use adroute_policy::workload::PolicyWorkload;
use adroute_protocols::forwarding::sample_flows;

fn main() {
    let topo = internet(100, 13);
    let db = PolicyWorkload::default_mix(13).generate(&topo);

    // ---------- (a) amortization vs flow length ------------------------
    let mut t = Table::new(
        "E6(a): mean header bytes/packet vs packets per flow",
        &[
            "pkts/flow",
            "handle+setup",
            "handle only",
            "full source route",
            "crossover?",
        ],
    );
    let flows = sample_flows(&topo, 40, 13);
    for pkts in [1usize, 2, 5, 10, 50, 500] {
        let mut net =
            OrwgNetwork::converged_with(&topo, &db, Strategy::Cached { capacity: 4096 }, 65536);
        let mut setup_bytes = 0usize;
        let mut handle_bytes = 0usize;
        let mut sr_bytes = 0usize;
        let mut delivered = 0usize;
        for f in &flows {
            let Ok(setup) = net.open(f) else { continue };
            setup_bytes += setup.header_bytes;
            for _ in 0..pkts {
                let d = net.send(setup.handle).expect("established flow");
                handle_bytes += d.header_bytes;
                let s = net.send_source_routed(f).expect("same route");
                sr_bytes += s.header_bytes;
                delivered += 1;
            }
        }
        let with_setup = (setup_bytes + handle_bytes) as f64 / delivered as f64;
        let handle_only = handle_bytes as f64 / delivered as f64;
        let sr = sr_bytes as f64 / delivered as f64;
        t.row(&[
            &pkts,
            &f2(with_setup),
            &f2(handle_only),
            &f2(sr),
            &(if with_setup < sr {
                "handle wins"
            } else {
                "src-route wins"
            }),
        ]);
    }
    t.print();

    // ---------- (b) handle-cache pressure ------------------------------
    let mut t = Table::new(
        "E6(b): gateway handle-cache capacity vs re-setup overhead (200 concurrent flows)",
        &[
            "capacity",
            "evictions",
            "data drops",
            "re-setups",
            "total header KB",
        ],
    );
    let many_flows = sample_flows(&topo, 200, 14);
    for capacity in [8usize, 32, 128, 512, 2048] {
        let mut net =
            OrwgNetwork::converged_with(&topo, &db, Strategy::Cached { capacity: 4096 }, capacity);
        let mut handles = Vec::new();
        let mut bytes = 0usize;
        for f in &many_flows {
            if let Ok(s) = net.open(f) {
                bytes += s.header_bytes;
                handles.push((*f, s.handle));
            }
        }
        // Interleave sends across all flows: LRU pressure.
        let mut drops = 0u64;
        let mut resetups = 0u64;
        for round in 0..3 {
            for (f, h) in handles.iter_mut() {
                match net.send(*h) {
                    Ok(d) => bytes += d.header_bytes,
                    Err(SendError::Dropped(DataError::UnknownHandle { .. })) => {
                        drops += 1;
                        // Source re-opens (paper: PG tables are "filled on
                        // demand"; a miss re-triggers setup).
                        if let Ok(s) = net.open(f) {
                            resetups += 1;
                            bytes += s.header_bytes;
                            *h = s.handle;
                        }
                    }
                    Err(e) => panic!("round {round}: {e:?}"),
                }
            }
        }
        let evictions: u64 = topo.ad_ids().map(|a| net.gateway(a).evictions()).sum();
        t.row(&[&capacity, &evictions, &drops, &resetups, &(bytes / 1024)]);
    }
    t.print();
    println!(
        "\nReading: one setup packet costs several times a data packet, so full \
         source routes win only for 1-2 packet flows; beyond that the 12-byte \
         handle dominates (the paper's design rationale). Undersized gateway \
         caches churn: evictions force re-setups, recovering the overhead that \
         handles were meant to eliminate."
    );
}
