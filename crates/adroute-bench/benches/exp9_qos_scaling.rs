//! **E9** (paper §3) — QOS-route scaling: repeated per-class computation
//! vs policy-term synthesis.
//!
//! "In OSPF and IS-IS … the basic route computation is repeated for each
//! QOS. These mechanisms support only a limited number of Qualities of
//! Service; they are not scalable either to a large number of QOS or to
//! source specific policies." We sweep the number of QOS classes and
//! compare: (i) ECMA's per-QOS FIB replication and update growth (the
//! IGP-style mechanism), (ii) LS-HBH per-class computations, and (iii)
//! ORWG synthesis, which only ever computes the classes actually used.

use adroute_bench::{f2, internet, Table};
use adroute_core::{OrwgNetwork, Strategy};
use adroute_policy::workload::PolicyWorkload;
use adroute_policy::QosClass;
use adroute_protocols::ecma::Ecma;
use adroute_protocols::forwarding::{forward, sample_flows};
use adroute_protocols::ls_hbh::LsHbh;
use adroute_sim::Engine;

fn main() {
    let topo = internet(100, 29);
    let db = PolicyWorkload::default_mix(29).generate(&topo);
    // The active traffic uses only 3 distinct classes regardless of how
    // many the network provisions — the gap the paper points at.
    let flows: Vec<_> = sample_flows(&topo, 60, 29)
        .into_iter()
        .enumerate()
        .map(|(i, f)| f.with_qos(QosClass((i % 3) as u8)))
        .collect();

    let mut t = Table::new(
        "E9: provisioned QOS classes vs routing work",
        &[
            "classes",
            "ECMA FIB entries/AD",
            "ECMA ctl MBytes",
            "LS-HBH computations",
            "ORWG searches",
        ],
    );
    for q in [1u8, 2, 4, 8, 16] {
        // ECMA with q provisioned classes (80% support probability).
        let proto = Ecma::hierarchical_with_qos(&topo, q, 0.8, 29);
        let mut ecma = Engine::new(topo.clone(), proto);
        ecma.run_to_quiescence();
        let fib_per_ad = topo.num_ads() * q as usize; // dest x class per AD
        let ecma_bytes = ecma.stats.bytes_sent;

        // LS-HBH: computations per distinct class actually seen.
        let mut ls = Engine::new(topo.clone(), LsHbh::new(&topo, db.clone()));
        ls.run_to_quiescence();
        for f in &flows {
            let _ = forward(&mut ls, &topo, f);
        }
        let ls_comp: u64 = topo.ad_ids().map(|a| ls.router(a).route_computations).sum();

        // ORWG: synthesis only for requested classes.
        let mut net =
            OrwgNetwork::converged_with(&topo, &db, Strategy::Cached { capacity: 4096 }, 65536);
        for f in &flows {
            let _ = net.open(f);
        }
        let orwg = net.total_searches();

        t.row(&[
            &q,
            &fib_per_ad,
            &f2(ecma_bytes as f64 / 1e6),
            &ls_comp,
            &orwg,
        ]);
    }
    t.print();
    println!(
        "\nReading: IGP-style mechanisms pay for every *provisioned* class — ECMA's \
         FIBs and update bytes grow linearly with q even though traffic only uses 3 \
         classes. LS-HBH and ORWG pay per *used* class, and ORWG pays it once at \
         the source rather than at every hop (see E5)."
    );
}
