//! **E8** (paper §2.2) — control-plane scaling across the design space.
//!
//! The paper sizes the target internet at 10^5 ADs with 10^4 transit ADs
//! and demands protocols that "work efficiently for the general
//! hierarchical case". We sweep internet size and report, per
//! architecture: messages and bytes to initial convergence, convergence
//! time, and the incremental cost of one link failure. Shapes to check:
//! DV-family *bytes* grow superlinearly (each update carries O(n)
//! entries); flooding sends more but smaller messages; a failure is a
//! local event for link state (two re-originated LSAs) but a global
//! recomputation wave for the DV family.

use adroute_bench::{f2, internet, Table};
use adroute_policy::workload::PolicyWorkload;
use adroute_protocols::ecma::Ecma;
use adroute_protocols::ls_hbh::LsHbh;
use adroute_protocols::naive_dv::NaiveDv;
use adroute_protocols::path_vector::PathVector;
use adroute_sim::{Engine, Protocol, SimTime};
use adroute_topology::Topology;

struct Row {
    msgs: u64,
    bytes: u64,
    conv: SimTime,
    fail_msgs: u64,
    fail_bytes: u64,
}

fn run<P: Protocol>(topo: Topology, proto: P) -> Row {
    let mut e = Engine::new(topo, proto);
    let conv = e.run_to_quiescence();
    let (msgs, bytes) = (e.stats.msgs_sent, e.stats.bytes_sent);
    // Fail the first link of the highest-degree AD: a meaningful event.
    let victim = e
        .topo()
        .ad_ids()
        .max_by_key(|&a| e.topo().degree(a))
        .and_then(|a| e.topo().neighbors(a).next().map(|(_, l)| l))
        .expect("non-empty topology");
    let t = e.now().plus_us(1000);
    e.schedule_link_change(victim, false, t);
    e.stats.reset_counters();
    e.run_to_quiescence();
    Row {
        msgs,
        bytes,
        conv,
        fail_msgs: e.stats.msgs_sent,
        fail_bytes: e.stats.bytes_sent,
    }
}

fn main() {
    let mut t = Table::new(
        "E8: control overhead vs internet size",
        &[
            "ADs",
            "architecture",
            "msgs",
            "MBytes",
            "conv ms",
            "fail msgs",
            "fail KB",
        ],
    );
    for scale in [50usize, 100, 200, 400] {
        let topo = internet(scale, 23);
        let db = PolicyWorkload::default_mix(23).generate(&topo);
        let n = topo.num_ads();

        let r = run(topo.clone(), NaiveDv::default());
        t.row(&[
            &n,
            &"naive DV",
            &r.msgs,
            &f2(r.bytes as f64 / 1e6),
            &r.conv.as_ms(),
            &r.fail_msgs,
            &(r.fail_bytes / 1024),
        ]);

        let r = run(topo.clone(), Ecma::hierarchical(&topo));
        t.row(&[
            &n,
            &"ECMA",
            &r.msgs,
            &f2(r.bytes as f64 / 1e6),
            &r.conv.as_ms(),
            &r.fail_msgs,
            &(r.fail_bytes / 1024),
        ]);

        // The path-vector full-table state is O(dests × classes × path)
        // per neighbor: beyond ~100 ADs one run needs minutes to hours and
        // gigabytes — the paper's scaling objection made concrete. We
        // report it up to 100 and mark larger scales infeasible.
        if n <= 100 {
            let r = run(topo.clone(), PathVector::idrp(db.clone()));
            t.row(&[
                &n,
                &"IDRP (PV)",
                &r.msgs,
                &f2(r.bytes as f64 / 1e6),
                &r.conv.as_ms(),
                &r.fail_msgs,
                &(r.fail_bytes / 1024),
            ]);
        } else {
            t.row(&[&n, &"IDRP (PV)", &"(infeasible)", &"-", &"-", &"-", &"-"]);
        }

        let r = run(topo.clone(), LsHbh::new(&topo, db.clone()));
        t.row(&[
            &n,
            &"link state",
            &r.msgs,
            &f2(r.bytes as f64 / 1e6),
            &r.conv.as_ms(),
            &r.fail_msgs,
            &(r.fail_bytes / 1024),
        ]);
    }
    t.print();
    println!(
        "\nReading: the link-state row doubles as the ORWG control plane (identical \
         flooding; source routing adds no control messages). IDRP messages are few \
         (MRAI batching) but each carries the full multi-attribute table, so bytes \
         dominate; link-state failure cost stays flat (two LSAs reflooded) while \
         DV-family failure cost grows with the table size."
    );
}
