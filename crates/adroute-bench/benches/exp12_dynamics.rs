//! **E12** (paper §2.2) — steady-state behaviour under continuous link
//! churn.
//!
//! The paper's operating regime: stable AD membership, inter-AD links
//! that fail and recover, policies that change slowly. We run each
//! control plane under a seeded MTBF/MTTR failure process and measure the
//! sustained control-message rate; then we run session traffic over the
//! ORWG data plane across discrete failure epochs and measure the
//! collateral re-setup cost the churn imposes on established policy
//! routes.

use adroute_bench::{f2, internet, Table};
use adroute_core::{OrwgNetwork, Strategy};
use adroute_policy::workload::PolicyWorkload;
use adroute_protocols::ecma::Ecma;
use adroute_protocols::ls_hbh::LsHbh;
use adroute_protocols::naive_dv::NaiveDv;
use adroute_protocols::path_vector::PathVector;
use adroute_sim::{Engine, FailureModel, FailureSchedule, Protocol};
use adroute_topology::Topology;

fn churn<P: Protocol>(topo: Topology, proto: P, model: &FailureModel) -> (usize, u64, f64) {
    let mut e = Engine::new(topo, proto);
    e.run_to_quiescence();
    let start = e.now().plus_us(1000);
    let horizon_ms = 1_000;
    let schedule = FailureSchedule::draw(e.topo(), model, start, horizon_ms);
    let failures = schedule.failures();
    schedule.apply(&mut e);
    e.stats.reset_counters();
    e.run_to_quiescence();
    let msgs = e.stats.msgs_sent;
    (failures, msgs, msgs as f64 / failures.max(1) as f64)
}

fn main() {
    // Part (a) uses a one-backbone internet (~50 ADs): the path-vector
    // rows reconverge on every event, which is exactly the cost being
    // measured — at larger scales it dominates the whole suite's runtime.
    let topo = internet(50, 43);
    let db = PolicyWorkload::default_mix(43).generate(&topo);
    let model = FailureModel {
        mtbf_ms: 300.0,
        mttr_ms: 60.0,
        fallible_fraction: 0.15,
        seed: 43,
    };

    let mut t = Table::new(
        "E12(a): sustained control traffic under link churn (1s horizon)",
        &["architecture", "link events", "ctl msgs", "msgs / event"],
    );
    let (f, m, r) = churn(topo.clone(), NaiveDv::default(), &model);
    t.row(&[&"naive DV", &f, &m, &f2(r)]);
    let (f, m, r) = churn(topo.clone(), Ecma::hierarchical(&topo), &model);
    t.row(&[&"ECMA", &f, &m, &f2(r)]);
    let (f, m, r) = churn(topo.clone(), PathVector::idrp(db.clone()), &model);
    t.row(&[&"IDRP (PV)", &f, &m, &f2(r)]);
    let (f, m, r) = churn(topo.clone(), LsHbh::new(&topo, db.clone()), &model);
    t.row(&[&"link state / ORWG", &f, &m, &f2(r)]);
    t.print();

    // (b) ORWG data-plane collateral: open long-lived policy routes once
    // (the paper: "PRs may have a long lifetime"), then keep sending
    // across failure epochs; count the re-setups churn forces.
    let mut t = Table::new(
        "E12(b): ORWG long-lived flows across failure epochs",
        &[
            "epoch",
            "failed links",
            "live flows",
            "pkts ok",
            "resetups",
            "lost flows",
            "hdr bytes/pkt",
        ],
    );
    let topo = internet(100, 44);
    let db = PolicyWorkload::default_mix(44).generate(&topo);
    let mut net =
        OrwgNetwork::converged_with(&topo, &db, Strategy::Cached { capacity: 2048 }, 65536);
    let all_links: Vec<_> = topo.links().map(|l| l.id).collect();
    let flows = adroute_protocols::forwarding::sample_flows(&topo, 250, 44);
    let mut live: Vec<(adroute_policy::FlowSpec, adroute_core::HandleId)> = Vec::new();
    for f in &flows {
        if let Ok(s) = net.open(f) {
            live.push((*f, s.handle));
        }
    }
    let mut failed = 0usize;
    for epoch in 0..4 {
        if epoch > 0 {
            for k in 0..2 {
                let idx = (epoch * 13 + k * 29) % all_links.len();
                net.fail_link(all_links[idx]);
                failed += 1;
            }
        }
        let mut pkts = 0u64;
        let mut resetups = 0u64;
        let mut lost = 0u64;
        let mut bytes = 0u64;
        for (f, h) in live.iter_mut() {
            for _ in 0..5 {
                match net.send(*h) {
                    Ok(d) => {
                        pkts += 1;
                        bytes += d.header_bytes as u64;
                    }
                    Err(_) => match net.open(f) {
                        Ok(s) => {
                            resetups += 1;
                            bytes += s.header_bytes as u64;
                            *h = s.handle;
                        }
                        Err(_) => {
                            lost += 1;
                            break;
                        }
                    },
                }
            }
        }
        t.row(&[
            &epoch,
            &failed,
            &live.len(),
            &pkts,
            &resetups,
            &lost,
            &f2(if pkts == 0 {
                0.0
            } else {
                bytes as f64 / pkts as f64
            }),
        ]);
    }
    t.print();
    println!(
        "\nReading: per link event, link state pays a constant two-LSA reflood while \
         the DV family recomputes and re-advertises tables; under the paper's \
         assumption that policy and topology 'change much more slowly than the \
         time required for route setup', the ORWG re-setup cost per epoch stays \
         a small fraction of total traffic."
    );
}
