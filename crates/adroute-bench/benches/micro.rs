//! **M1** — Criterion micro-benchmarks of the hot paths: the
//! policy-constrained route search (Route Server synthesis), the ordering
//! solver, link-state view reconstruction, ORWG setup/forwarding, and the
//! ECMA valley-free search.

// criterion_group! expands to undocumented items.
#![allow(missing_docs)]

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use adroute_core::{OrwgNetwork, Strategy};
use adroute_policy::legality::legal_route;
use adroute_policy::ordering::{random_constraints, solve_ordering};
use adroute_policy::workload::PolicyWorkload;
use adroute_protocols::forwarding::sample_flows;
use adroute_protocols::linkstate::LsDb;
use adroute_protocols::ls_hbh::LsHbh;
use adroute_sim::Engine;
use adroute_topology::{AdId, HierarchyConfig, PartialOrder};

fn bench_oracle(c: &mut Criterion) {
    let topo = HierarchyConfig::with_approx_size(200, 41).generate();
    let db = PolicyWorkload::default_mix(41).generate(&topo);
    let flows = sample_flows(&topo, 64, 41);
    let mut i = 0;
    c.bench_function("oracle_legal_route_200ads", |b| {
        b.iter(|| {
            let f = &flows[i % flows.len()];
            i += 1;
            black_box(legal_route(&topo, &db, f))
        })
    });
}

fn bench_ordering_solver(c: &mut Criterion) {
    let topo = HierarchyConfig::with_approx_size(100, 43).generate();
    let cs = random_constraints(&topo, 200, 0.5, 43);
    c.bench_function("ordering_solver_200_constraints", |b| {
        b.iter(|| black_box(solve_ordering(topo.num_ads(), &cs)))
    });
}

fn bench_lsdb_view(c: &mut Criterion) {
    let topo = HierarchyConfig::with_approx_size(200, 47).generate();
    let db = PolicyWorkload::default_mix(47).generate(&topo);
    let mut e = Engine::new(topo.clone(), LsHbh::new(&topo, db));
    e.run_to_quiescence();
    let lsdb: &LsDb = &e.router(AdId(0)).flooder.db;
    c.bench_function("lsdb_view_reconstruction_200ads", |b| {
        b.iter(|| black_box(lsdb.view()))
    });
}

fn bench_orwg_data_plane(c: &mut Criterion) {
    let topo = HierarchyConfig::with_approx_size(200, 53).generate();
    let db = PolicyWorkload::default_mix(53).generate(&topo);
    let mut net =
        OrwgNetwork::converged_with(&topo, &db, Strategy::Cached { capacity: 4096 }, 65536);
    let flows = sample_flows(&topo, 64, 53);
    let mut i = 0;
    c.bench_function("orwg_open_cached", |b| {
        b.iter(|| {
            let f = &flows[i % flows.len()];
            i += 1;
            black_box(net.open(f).ok())
        })
    });
    let flow = flows
        .iter()
        .find(|f| net.open(f).is_ok())
        .copied()
        .expect("some routable flow");
    let handle = net.open(&flow).unwrap().handle;
    c.bench_function("orwg_send_handle", |b| {
        b.iter(|| black_box(net.send(handle).unwrap()))
    });
}

fn bench_valley_free(c: &mut Criterion) {
    let topo = HierarchyConfig::with_approx_size(400, 59).generate();
    let po = PartialOrder::from_levels(&topo);
    let pairs = sample_flows(&topo, 64, 59);
    let mut i = 0;
    c.bench_function("ecma_valley_free_search_400ads", |b| {
        b.iter(|| {
            let f = &pairs[i % pairs.len()];
            i += 1;
            black_box(po.valley_free_path(&topo, f.src, f.dst))
        })
    });
}

fn bench_workload_generation(c: &mut Criterion) {
    let topo = HierarchyConfig::with_approx_size(400, 61).generate();
    c.bench_function("policy_workload_generation_400ads", |b| {
        b.iter(|| black_box(PolicyWorkload::default_mix(61).generate(&topo)))
    });
}

criterion_group!(
    benches,
    bench_oracle,
    bench_ordering_solver,
    bench_lsdb_view,
    bench_orwg_data_plane,
    bench_valley_free,
    bench_workload_generation
);
criterion_main!(benches);
