//! Shared plumbing for the benchmark harness that regenerates every table
//! and figure of the paper (see `DESIGN.md` Section 5 for the experiment
//! index and `EXPERIMENTS.md` for recorded results).
//!
//! Each `benches/*.rs` target is a plain `harness = false` binary that
//! prints one experiment's table(s) to stdout; `cargo bench` therefore
//! regenerates the entire evaluation. The `micro` target uses Criterion
//! for wall-clock micro-benchmarks.

use std::fmt::Display;

/// A printable results table with Markdown-style formatting.
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A new table with the given title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (stringifying each cell).
    pub fn row(&mut self, cells: &[&dyn Display]) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Prints the table as aligned Markdown.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        println!("\n## {}\n", self.title);
        let line = |cells: &[String]| {
            let mut s = String::from("|");
            for (i, c) in cells.iter().enumerate() {
                s.push_str(&format!(" {:<w$} |", c, w = widths[i]));
            }
            s
        };
        println!("{}", line(&self.headers));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        println!("{sep}");
        for row in &self.rows {
            println!("{}", line(row));
        }
    }
}

/// Formats a float to two decimals (table cell helper).
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a fraction as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// The canonical experiment internet at a given approximate scale.
pub fn internet(approx_ads: usize, seed: u64) -> adroute_topology::Topology {
    adroute_topology::HierarchyConfig {
        lateral_prob: 0.25,
        bypass_prob: 0.1,
        multihome_prob: 0.2,
        ..adroute_topology::HierarchyConfig::with_approx_size(approx_ads, seed)
    }
    .generate()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_prints_without_panicking() {
        let mut t = Table::new("demo", &["a", "bb"]);
        t.row(&[&1, &"xyz"]);
        t.row(&[&22, &"q"]);
        t.print();
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(pct(0.5), "50.0%");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("demo", &["a"]);
        t.row(&[&1, &2]);
    }

    #[test]
    fn internet_scales() {
        assert!(internet(100, 1).num_ads() >= 49);
    }
}
